package spec

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qosres/internal/core"
	"qosres/internal/qrg"
	"qosres/internal/workload"
)

const exampleDoc = `{
  "name": "media",
  "components": [
    {
      "id": "Encoder",
      "in":  {"src": {"rate": 30}},
      "out": {"hi": {"rate": 30}, "lo": {"rate": 15}},
      "outOrder": ["hi", "lo"],
      "table": {"src": {"hi": {"cpu": 40}, "lo": {"cpu": 15}}},
      "resources": ["cpu"]
    },
    {
      "id": "Player",
      "in":  {"in-hi": {"rate": 30}, "in-lo": {"rate": 15}},
      "out": {"best": {"rate": 30, "delay": 1}, "ok": {"rate": 15, "delay": 2}},
      "outOrder": ["best", "ok"],
      "table": {
        "in-hi": {"best": {"net": 60}},
        "in-lo": {"best": {"net": 80}, "ok": {"net": 25}}
      },
      "resources": ["net"]
    }
  ],
  "edges": [{"from": "Encoder", "to": "Player"}],
  "ranking": ["best", "ok"],
  "binding": {
    "Encoder": {"cpu": "cpu@server"},
    "Player":  {"net": "net@server"}
  },
  "availability": {"cpu@server": 200, "net@server": 100},
  "alpha": {"net@server": 0.9}
}`

func TestParseBuildPlan(t *testing.T) {
	doc, err := Parse([]byte(exampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	service, binding, snap, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if service.Name != "media" || len(service.Components) != 2 {
		t.Fatalf("service = %+v", service)
	}
	if snap.Alpha["net@server"] != 0.9 || snap.Alpha["cpu@server"] != 1 {
		t.Fatalf("alpha = %v", snap.Alpha)
	}
	g, err := qrg.Build(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := (core.Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EndToEnd.Name != "best" || plan.Psi != 0.6 {
		t.Fatalf("plan = %s / %v", plan.EndToEnd.Name, plan.Psi)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("{nope")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBuildRejectsModelErrors(t *testing.T) {
	mutate := func(f func(*Session)) error {
		doc, err := Parse([]byte(exampleDoc))
		if err != nil {
			t.Fatal(err)
		}
		f(doc)
		_, _, _, err = doc.Build()
		return err
	}
	if err := mutate(func(s *Session) { s.Ranking = []string{"best"} }); err == nil {
		t.Error("short ranking accepted")
	}
	if err := mutate(func(s *Session) { s.Edges[0].To = "ghost" }); err == nil {
		t.Error("edge to unknown component accepted")
	}
	if err := mutate(func(s *Session) {
		s.Components[0].Table["src"]["hi"] = map[string]float64{"mystery": 1}
	}); err == nil {
		t.Error("undeclared resource accepted")
	}
	if err := mutate(func(s *Session) {
		s.Components[0].OutOrder = []string{"hi", "ghost"}
	}); err == nil {
		t.Error("bad level order accepted")
	}
	if err := mutate(func(s *Session) {
		s.Components[0].OutOrder = []string{"hi"}
	}); err == nil {
		t.Error("short level order accepted")
	}
	if err := mutate(func(s *Session) {
		s.Alpha = map[string]float64{"ghost": 0.5}
	}); err == nil {
		t.Error("alpha for unknown resource accepted")
	}
	if err := mutate(func(s *Session) {
		s.Components[0].In["src"]["rate"] = 30
		s.Components[0].In[""] = map[string]float64{"rate": 1}
	}); err == nil {
		t.Error("empty level name accepted")
	}
}

func TestRoundTripThroughFromModel(t *testing.T) {
	// Model -> doc -> JSON -> doc -> model must preserve planning
	// results. Use the video service as a nontrivial fixture.
	service := workload.VideoService()
	binding := workload.VideoBinding()
	snap := workload.VideoSnapshot()

	doc, err := FromModel(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	data, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	service2, binding2, snap2, err := doc2.Build()
	if err != nil {
		t.Fatal(err)
	}

	g1, err := qrg.Build(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := qrg.Build(service2, binding2, snap2)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := (core.Basic{}).Plan(g1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := (core.Basic{}).Plan(g2)
	if err != nil {
		t.Fatal(err)
	}
	if p1.EndToEnd.Name != p2.EndToEnd.Name || p1.Psi != p2.Psi || p1.PathLevels != p2.PathLevels {
		t.Fatalf("round trip changed the plan: %s/%v vs %s/%v", p1.PathLevels, p1.Psi, p2.PathLevels, p2.Psi)
	}
}

func TestEncodeIsStableJSON(t *testing.T) {
	doc, err := Parse([]byte(exampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	data, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name": "media"`) {
		t.Fatalf("encoded doc = %s", data)
	}
	// Encode -> Parse -> Encode must be a fixed point.
	doc2, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := doc2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("Encode not idempotent")
	}
}

func TestShippedEcommerceSpec(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "examples", "specs", "ecommerce.json"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	service, binding, snap, err := doc.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := qrg.Build(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := (core.Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if plan.EndToEnd.Name != "premium" || plan.Rank != 3 {
		t.Fatalf("plan = %s rank %d", plan.EndToEnd.Name, plan.Rank)
	}
	if err := core.ValidatePlan(g, plan); err != nil {
		t.Fatal(err)
	}
}
