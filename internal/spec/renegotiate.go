package spec

// Renegotiation wire types: the serving front end's mid-session
// adaptation surface (`POST /renegotiate` on qosserved), shared with
// the drivers that exercise it so both sides agree on one document.

// RenegotiateRequest asks the front end to move an established session
// to a different end-to-end level.
type RenegotiateRequest struct {
	// Session is the ID handed out by /establish.
	Session string `json:"session"`
	// Level is the target end-to-end level name.
	Level string `json:"level"`
}

// RenegotiateReply reports the session's level after the request.
type RenegotiateReply struct {
	Session string `json:"session"`
	// Level and Rank describe the session's (possibly new) end-to-end
	// level.
	Level string `json:"level"`
	Rank  int    `json:"rank"`
	// Outcome is "upgraded", "downgraded", or "unchanged".
	Outcome string `json:"outcome"`
}
