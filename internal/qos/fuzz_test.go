package qos

import "testing"

// FuzzResourceVectorOps ensures vector arithmetic never panics and
// preserves basic algebraic sanity for arbitrary inputs.
func FuzzResourceVectorOps(f *testing.F) {
	f.Add(1.0, 2.0, 0.5)
	f.Add(0.0, 0.0, 0.0)
	f.Add(-3.0, 7.5, 2.0)
	f.Fuzz(func(t *testing.T, a, b, scale float64) {
		r := ResourceVector{"x": a, "y": b}
		s := r.Scale(scale)
		if len(s) != 2 {
			t.Fatal("Scale changed the resource set")
		}
		sum := r.Add(r)
		if len(sum) != 2 {
			t.Fatal("Add changed the resource set")
		}
		_ = r.Clone()
		_ = r.String()
		_, _ = r.Compare(r.Clone())
		_ = r.Leq(sum)
	})
}
