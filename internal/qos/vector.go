// Package qos defines the primitive value types of the QoS-Resource Model:
// application-level QoS vectors with discrete parameter values, and
// resource requirement vectors. Both kinds of vector are compared under a
// component-wise partial order, exactly as in section 2.2 of the paper:
// Qa <= Qb holds iff every parameter of Qa is not larger than the
// corresponding parameter of Qb, and the comparison is only defined when
// the two vectors carry the same parameter set.
package qos

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Ordering is the result of comparing two vectors under the component-wise
// partial order.
type Ordering int

const (
	// Incomparable means neither vector dominates the other.
	Incomparable Ordering = iota
	// Less means the receiver is dominated (strictly in at least one
	// parameter, never larger in any).
	Less
	// Equal means all parameters match exactly.
	Equal
	// Greater means the receiver dominates.
	Greater
)

// String returns a human-readable name for the ordering.
func (o Ordering) String() string {
	switch o {
	case Incomparable:
		return "incomparable"
	case Less:
		return "less"
	case Equal:
		return "equal"
	case Greater:
		return "greater"
	}
	return fmt.Sprintf("Ordering(%d)", int(o))
}

// Param is a single named QoS parameter with a discrete value.
// Examples from the paper: Frame_Rate, Image_Size,
// Number_of_Trackable_Objects, Buffering_Delay.
type Param struct {
	Name  string
	Value float64
}

// Vector is an application-level QoS vector: an ordered list of named
// parameters. Instances of a component's Qin and Qout are Vectors.
// The zero Vector is an empty vector, valid and comparable only with
// other empty vectors.
type Vector struct {
	params []Param
}

// NewVector builds a Vector from (name, value) pairs. Parameter order is
// preserved; duplicate names are rejected.
func NewVector(params ...Param) (Vector, error) {
	seen := make(map[string]bool, len(params))
	for _, p := range params {
		if p.Name == "" {
			return Vector{}, fmt.Errorf("qos: empty parameter name")
		}
		if seen[p.Name] {
			return Vector{}, fmt.Errorf("qos: duplicate parameter %q", p.Name)
		}
		if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
			return Vector{}, fmt.Errorf("qos: parameter %q has non-finite value", p.Name)
		}
		seen[p.Name] = true
	}
	v := Vector{params: make([]Param, len(params))}
	copy(v.params, params)
	return v, nil
}

// MustVector is NewVector that panics on error; intended for statically
// known literals such as workload tables.
func MustVector(params ...Param) Vector {
	v, err := NewVector(params...)
	if err != nil {
		panic(err)
	}
	return v
}

// P is shorthand for constructing a Param.
func P(name string, value float64) Param { return Param{Name: name, Value: value} }

// Len returns the number of parameters.
func (v Vector) Len() int { return len(v.params) }

// Params returns a copy of the parameter list.
func (v Vector) Params() []Param {
	out := make([]Param, len(v.params))
	copy(out, v.params)
	return out
}

// Get returns the value of the named parameter.
func (v Vector) Get(name string) (float64, bool) {
	for _, p := range v.params {
		if p.Name == name {
			return p.Value, true
		}
	}
	return 0, false
}

// Names returns the parameter names in vector order.
func (v Vector) Names() []string {
	out := make([]string, len(v.params))
	for i, p := range v.params {
		out[i] = p.Name
	}
	return out
}

// SameParams reports whether both vectors carry exactly the same parameter
// set (ignoring order).
func (v Vector) SameParams(o Vector) bool {
	if len(v.params) != len(o.params) {
		return false
	}
	for _, p := range v.params {
		if _, ok := o.Get(p.Name); !ok {
			return false
		}
	}
	return true
}

// Compare compares two QoS vectors under the component-wise partial order.
// It returns an error when the vectors do not share the same parameter
// set, because the paper defines the order only on identical sets.
func (v Vector) Compare(o Vector) (Ordering, error) {
	if !v.SameParams(o) {
		return Incomparable, fmt.Errorf("qos: comparing vectors with different parameter sets %v vs %v", v.Names(), o.Names())
	}
	allLeq, allGeq := true, true
	for _, p := range v.params {
		ov, _ := o.Get(p.Name)
		if p.Value > ov {
			allLeq = false
		}
		if p.Value < ov {
			allGeq = false
		}
	}
	switch {
	case allLeq && allGeq:
		return Equal, nil
	case allLeq:
		return Less, nil
	case allGeq:
		return Greater, nil
	default:
		return Incomparable, nil
	}
}

// Leq reports whether v <= o under the partial order. It returns false
// (never an error) for vectors with mismatched parameter sets, matching
// the common use "does this input level satisfy that requirement".
func (v Vector) Leq(o Vector) bool {
	ord, err := v.Compare(o)
	if err != nil {
		return false
	}
	return ord == Less || ord == Equal
}

// Equal reports exact equality of parameter sets and values.
func (v Vector) Equal(o Vector) bool {
	ord, err := v.Compare(o)
	return err == nil && ord == Equal
}

// Concat concatenates two QoS vectors, as required for the Qin of a
// fan-in service component (section 4.3.2): the Qin of a fan-in component
// is the concatenation of the Qout of each upstream component. Parameter
// names are prefixed with the given labels to keep them distinct.
func Concat(labelA string, a Vector, labelB string, b Vector) Vector {
	params := make([]Param, 0, len(a.params)+len(b.params))
	for _, p := range a.params {
		params = append(params, Param{Name: labelA + "." + p.Name, Value: p.Value})
	}
	for _, p := range b.params {
		params = append(params, Param{Name: labelB + "." + p.Name, Value: p.Value})
	}
	v, err := NewVector(params...)
	if err != nil {
		// Labels are expected to be distinct; collisions indicate caller bug.
		panic(err)
	}
	return v
}

// ConcatAll concatenates any number of QoS vectors with per-vector label
// prefixes, generalizing Concat to fan-in components with more than two
// upstream components. labels and vs must have equal length.
func ConcatAll(labels []string, vs []Vector) Vector {
	if len(labels) != len(vs) {
		panic(fmt.Sprintf("qos: ConcatAll with %d labels for %d vectors", len(labels), len(vs)))
	}
	var params []Param
	for i, v := range vs {
		for _, p := range v.params {
			params = append(params, Param{Name: labels[i] + "." + p.Name, Value: p.Value})
		}
	}
	out, err := NewVector(params...)
	if err != nil {
		panic(err)
	}
	return out
}

// String renders the vector as [name=value, ...].
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, p := range v.params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s=%g", p.Name, p.Value)
	}
	b.WriteByte(']')
	return b.String()
}

// ResourceVector is a resource requirement (or availability) vector
// R = [r_1 ... r_M]: amounts indexed by resource name. Names may be
// abstract, component-local resource names (e.g. "cpu", "net.up") before
// binding, or concrete environment-wide resource IDs (e.g. "cpu@H2",
// "link:L7") after binding.
type ResourceVector map[string]float64

// NewResourceVector copies the given map into a ResourceVector.
func NewResourceVector(m map[string]float64) ResourceVector {
	rv := make(ResourceVector, len(m))
	for k, a := range m {
		rv[k] = a
	}
	return rv
}

// Clone returns a deep copy.
func (r ResourceVector) Clone() ResourceVector {
	out := make(ResourceVector, len(r))
	for k, a := range r {
		out[k] = a
	}
	return out
}

// Scale returns a copy with every amount multiplied by f. It is used to
// build the paper's "fat" sessions, whose requirement is N times the base
// requirement.
func (r ResourceVector) Scale(f float64) ResourceVector {
	out := make(ResourceVector, len(r))
	for k, a := range r {
		out[k] = a * f
	}
	return out
}

// Add returns the component-wise sum of r and o; resources present in
// only one vector keep their single value.
func (r ResourceVector) Add(o ResourceVector) ResourceVector {
	out := r.Clone()
	for k, a := range o {
		out[k] += a
	}
	return out
}

// Leq reports whether r <= o for every resource named in r. Resources
// missing from o are treated as availability zero, so any positive
// requirement against them fails.
func (r ResourceVector) Leq(o ResourceVector) bool {
	for k, need := range r {
		if need > o[k] {
			return false
		}
	}
	return true
}

// SameResources reports whether both vectors name exactly the same
// resource set, the precondition the paper places on comparing two
// resource requirement vectors.
func (r ResourceVector) SameResources(o ResourceVector) bool {
	if len(r) != len(o) {
		return false
	}
	for k := range r {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// Compare compares two resource vectors under the component-wise partial
// order; an error is returned when the resource sets differ.
func (r ResourceVector) Compare(o ResourceVector) (Ordering, error) {
	if !r.SameResources(o) {
		return Incomparable, fmt.Errorf("qos: comparing resource vectors with different resource sets")
	}
	allLeq, allGeq := true, true
	for k, a := range r {
		b := o[k]
		if a > b {
			allLeq = false
		}
		if a < b {
			allGeq = false
		}
	}
	switch {
	case allLeq && allGeq:
		return Equal, nil
	case allLeq:
		return Less, nil
	case allGeq:
		return Greater, nil
	default:
		return Incomparable, nil
	}
}

// Names returns the resource names in sorted order.
func (r ResourceVector) Names() []string {
	out := make([]string, 0, len(r))
	for k := range r {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the vector deterministically, sorted by resource name.
func (r ResourceVector) String() string {
	names := r.Names()
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%g", k, r[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Validate checks that all amounts are finite and non-negative.
func (r ResourceVector) Validate() error {
	for k, a := range r {
		if k == "" {
			return fmt.Errorf("qos: empty resource name")
		}
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("qos: resource %q has non-finite amount", k)
		}
		if a < 0 {
			return fmt.Errorf("qos: resource %q has negative amount %g", k, a)
		}
	}
	return nil
}
