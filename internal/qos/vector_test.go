package qos

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewVectorRejectsDuplicates(t *testing.T) {
	if _, err := NewVector(P("a", 1), P("a", 2)); err == nil {
		t.Fatal("expected duplicate-parameter error")
	}
}

func TestNewVectorRejectsEmptyName(t *testing.T) {
	if _, err := NewVector(P("", 1)); err == nil {
		t.Fatal("expected empty-name error")
	}
}

func TestNewVectorRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewVector(P("a", bad)); err == nil {
			t.Fatalf("expected non-finite error for %v", bad)
		}
	}
}

func TestVectorGet(t *testing.T) {
	v := MustVector(P("rate", 30), P("size", 4))
	if got, ok := v.Get("rate"); !ok || got != 30 {
		t.Fatalf("Get(rate) = %v, %v", got, ok)
	}
	if _, ok := v.Get("missing"); ok {
		t.Fatal("Get(missing) should not be found")
	}
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
}

func TestVectorCompare(t *testing.T) {
	a := MustVector(P("rate", 30), P("size", 4))
	b := MustVector(P("rate", 25), P("size", 3))
	c := MustVector(P("rate", 25), P("size", 5))
	d := MustVector(P("size", 4), P("rate", 30)) // same params, different order

	cases := []struct {
		x, y Vector
		want Ordering
	}{
		{a, a, Equal},
		{a, d, Equal},
		{b, a, Less},
		{a, b, Greater},
		{a, c, Incomparable},
		{c, a, Incomparable},
	}
	for _, tc := range cases {
		got, err := tc.x.Compare(tc.y)
		if err != nil {
			t.Fatalf("Compare(%v,%v): %v", tc.x, tc.y, err)
		}
		if got != tc.want {
			t.Errorf("Compare(%v,%v) = %v, want %v", tc.x, tc.y, got, tc.want)
		}
	}
}

func TestVectorCompareMismatchedParams(t *testing.T) {
	a := MustVector(P("rate", 30))
	b := MustVector(P("size", 4))
	if _, err := a.Compare(b); err == nil {
		t.Fatal("expected error comparing different parameter sets")
	}
	if a.Leq(b) {
		t.Fatal("Leq over different parameter sets must be false")
	}
}

func TestVectorLeq(t *testing.T) {
	a := MustVector(P("rate", 25), P("size", 3))
	b := MustVector(P("rate", 30), P("size", 4))
	if !a.Leq(b) || !a.Leq(a) {
		t.Fatal("Leq reflexive/dominated cases failed")
	}
	if b.Leq(a) {
		t.Fatal("Leq should fail for dominating vector")
	}
}

func TestConcat(t *testing.T) {
	a := MustVector(P("rate", 30))
	b := MustVector(P("rate", 25), P("size", 3))
	c := Concat("x", a, "y", b)
	if c.Len() != 3 {
		t.Fatalf("Concat len = %d", c.Len())
	}
	if got, _ := c.Get("x.rate"); got != 30 {
		t.Fatalf("x.rate = %v", got)
	}
	if got, _ := c.Get("y.size"); got != 3 {
		t.Fatalf("y.size = %v", got)
	}
}

func TestConcatAll(t *testing.T) {
	a := MustVector(P("q", 1))
	b := MustVector(P("q", 2))
	c := MustVector(P("q", 3))
	out := ConcatAll([]string{"c1", "c2", "c3"}, []Vector{a, b, c})
	for i, want := range []float64{1, 2, 3} {
		name := []string{"c1.q", "c2.q", "c3.q"}[i]
		if got, ok := out.Get(name); !ok || got != want {
			t.Fatalf("%s = %v, %v", name, got, ok)
		}
	}
	var equal = ConcatAll([]string{"c1", "c2", "c3"}, []Vector{a, b, c})
	if !out.Equal(equal) {
		t.Fatal("ConcatAll must be deterministic")
	}
}

func TestConcatAllMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConcatAll([]string{"a"}, nil)
}

func TestVectorString(t *testing.T) {
	v := MustVector(P("rate", 30), P("size", 4))
	s := v.String()
	if !strings.Contains(s, "rate=30") || !strings.Contains(s, "size=4") {
		t.Fatalf("String = %q", s)
	}
}

func TestOrderingString(t *testing.T) {
	for o, want := range map[Ordering]string{
		Incomparable: "incomparable", Less: "less", Equal: "equal", Greater: "greater",
	} {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
	if Ordering(42).String() == "" {
		t.Error("unknown ordering should still render")
	}
}

func TestResourceVectorBasics(t *testing.T) {
	r := NewResourceVector(map[string]float64{"cpu": 4, "net": 7})
	cl := r.Clone()
	cl["cpu"] = 99
	if r["cpu"] != 4 {
		t.Fatal("Clone must not alias")
	}
	s := r.Scale(2)
	if s["cpu"] != 8 || s["net"] != 14 {
		t.Fatalf("Scale = %v", s)
	}
	sum := r.Add(ResourceVector{"cpu": 1, "disk": 2})
	if sum["cpu"] != 5 || sum["net"] != 7 || sum["disk"] != 2 {
		t.Fatalf("Add = %v", sum)
	}
}

func TestResourceVectorLeq(t *testing.T) {
	req := ResourceVector{"cpu": 4, "net": 7}
	if !req.Leq(ResourceVector{"cpu": 4, "net": 8}) {
		t.Fatal("expected satisfiable")
	}
	if req.Leq(ResourceVector{"cpu": 4}) {
		t.Fatal("missing availability must fail")
	}
	if req.Leq(ResourceVector{"cpu": 3, "net": 8}) {
		t.Fatal("cpu shortfall must fail")
	}
}

func TestResourceVectorCompare(t *testing.T) {
	a := ResourceVector{"cpu": 4, "net": 7}
	b := ResourceVector{"cpu": 5, "net": 7}
	c := ResourceVector{"cpu": 3, "net": 9}
	if got, err := a.Compare(b); err != nil || got != Less {
		t.Fatalf("Compare = %v, %v", got, err)
	}
	if got, err := b.Compare(a); err != nil || got != Greater {
		t.Fatalf("Compare = %v, %v", got, err)
	}
	if got, err := a.Compare(a.Clone()); err != nil || got != Equal {
		t.Fatalf("Compare = %v, %v", got, err)
	}
	if got, err := a.Compare(c); err != nil || got != Incomparable {
		t.Fatalf("Compare = %v, %v", got, err)
	}
	if _, err := a.Compare(ResourceVector{"cpu": 1}); err == nil {
		t.Fatal("expected mismatched-set error")
	}
}

func TestResourceVectorValidate(t *testing.T) {
	if err := (ResourceVector{"cpu": 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []ResourceVector{
		{"": 1},
		{"cpu": -1},
		{"cpu": math.NaN()},
		{"cpu": math.Inf(1)},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate(%v) should fail", bad)
		}
	}
}

func TestResourceVectorStringDeterministic(t *testing.T) {
	r := ResourceVector{"b": 2, "a": 1, "c": 3}
	want := "{a:1, b:2, c:3}"
	for i := 0; i < 10; i++ {
		if got := r.String(); got != want {
			t.Fatalf("String = %q, want %q", got, want)
		}
	}
}

// randomVector builds a vector over a fixed parameter set for property
// tests.
func randomVector(rng *rand.Rand) Vector {
	return MustVector(
		P("a", float64(rng.Intn(8))),
		P("b", float64(rng.Intn(8))),
		P("c", float64(rng.Intn(8))),
	)
}

func TestPropertyPartialOrderAntisymmetry(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: func(vs []reflect.Value, rng *rand.Rand) {
		vs[0] = reflect.ValueOf(randomVector(rng))
		vs[1] = reflect.ValueOf(randomVector(rng))
	}}
	f := func(a, b Vector) bool {
		if a.Leq(b) && b.Leq(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPartialOrderTransitivity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: func(vs []reflect.Value, rng *rand.Rand) {
		for i := range vs {
			vs[i] = reflect.ValueOf(randomVector(rng))
		}
	}}
	f := func(a, b, c Vector) bool {
		if a.Leq(b) && b.Leq(c) {
			return a.Leq(c)
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCompareConsistentWithLeq(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Values: func(vs []reflect.Value, rng *rand.Rand) {
		vs[0] = reflect.ValueOf(randomVector(rng))
		vs[1] = reflect.ValueOf(randomVector(rng))
	}}
	f := func(a, b Vector) bool {
		ord, err := a.Compare(b)
		if err != nil {
			return false
		}
		switch ord {
		case Less:
			return a.Leq(b) && !b.Leq(a)
		case Greater:
			return b.Leq(a) && !a.Leq(b)
		case Equal:
			return a.Leq(b) && b.Leq(a)
		case Incomparable:
			return !a.Leq(b) && !b.Leq(a)
		}
		return false
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScalePreservesLeq(t *testing.T) {
	f := func(cpu, net uint8, scale uint8) bool {
		r := ResourceVector{"cpu": float64(cpu), "net": float64(net)}
		s := r.Scale(float64(scale))
		big := r.Scale(float64(scale) + 1)
		return s.Leq(big)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
