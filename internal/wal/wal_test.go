package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Type: TypePrepare, Host: "H2", ID: "H2#1", Expiry: 12.5, Parts: []Part{
			{Resource: "cpu@H2", ID: 3, Amount: 1.25},
			{Resource: "net:H4->H2", ID: 1, Amount: 0.5, Links: []Link{
				{Resource: "link:L1", ID: 7}, {Resource: "link:L2", ID: 9},
			}},
		}},
		{Type: TypeDecide, Host: "H2", ID: "H2#1", Outcome: "commit", Expiry: 12.5},
		{Type: TypeCommit, Host: "H2", ID: "H2#1", Expiry: 12.5},
		{Type: TypeLease, Host: "H2", ID: "H2#1", Expiry: 22.5},
		{Type: TypeRelease, Host: "H2", ID: "H2#1"},
		{Type: TypeAbort, Host: "H3", ID: "H2#2"},
	}
}

// TestAppendReplayRoundTrip proves that appended records replay
// byte-identically, in order.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	for _, rec := range want {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Fatal("clean log replayed as torn")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", got, want)
	}
}

// TestReplayAcrossReopen proves that a log closed, reopened, and
// appended to replays the full history in order.
func TestReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, NoSync: true}
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypePrepare, ID: "a"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l, err = Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeCommit, ID: "a"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	got, torn, err := Replay(dir)
	if err != nil || torn {
		t.Fatalf("replay: torn=%v err=%v", torn, err)
	}
	if len(got) != 2 || got[0].Type != TypePrepare || got[1].Type != TypeCommit {
		t.Fatalf("unexpected records: %+v", got)
	}
}

// TestSegmentRotation proves a log past the segment threshold rotates
// into multiple segment files and still replays every record in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(Record{Type: TypeLease, ID: "H1#1", Expiry: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", len(segs))
	}
	got, torn, err := Replay(dir)
	if err != nil || torn {
		t.Fatalf("replay: torn=%v err=%v", torn, err)
	}
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i, rec := range got {
		if rec.Expiry != float64(i) {
			t.Fatalf("record %d out of order: %+v", i, rec)
		}
	}
}

// TestCheckpointCompacts proves Checkpoint replaces history with the
// snapshot: older segments are deleted and replay yields snapshot plus
// tail only.
func TestCheckpointCompacts(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := l.Append(Record{Type: TypePrepare, ID: "old"}); err != nil {
			t.Fatal(err)
		}
	}
	snap := []Record{
		{Type: TypePrepare, ID: "live", Expiry: 5},
		{Type: TypeCommit, ID: "live", Expiry: 5},
	}
	if err := l.Checkpoint(snap); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeLease, ID: "live", Expiry: 9}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("checkpoint left %d segments, want 1", len(segs))
	}
	got, torn, err := Replay(dir)
	if err != nil || torn {
		t.Fatalf("replay: torn=%v err=%v", torn, err)
	}
	want := append(append([]Record{}, snap...), Record{Type: TypeLease, ID: "live", Expiry: 9})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay after checkpoint:\n got %+v\nwant %+v", got, want)
	}
}

// TestTornTailEveryOffset simulates a crash during append by truncating
// the final record at every possible byte offset: replay must return
// exactly the preceding complete records and flag the tail as torn,
// never erroring and never producing a garbage record.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	seg := filepath.Join(dir, "wal-00000001.log")
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the start of the final frame by walking the frames.
	lastStart := 0
	off := 0
	for off < len(full) {
		lastStart = off
		n := int(uint32(full[off])<<24 | uint32(full[off+1])<<16 | uint32(full[off+2])<<8 | uint32(full[off+3]))
		off += 8 + n
	}
	for cut := lastStart; cut < len(full); cut++ {
		tdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(tdir, "wal-00000001.log"), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, torn, err := Replay(tdir)
		if err != nil {
			t.Fatalf("cut=%d: replay error: %v", cut, err)
		}
		if cut == lastStart {
			if torn {
				t.Fatalf("cut=%d: clean frame boundary flagged torn", cut)
			}
		} else if !torn {
			t.Fatalf("cut=%d: torn tail not detected", cut)
		}
		if !reflect.DeepEqual(got, recs[:len(recs)-1]) {
			t.Fatalf("cut=%d: got %d records, want the %d complete ones", cut, len(got), len(recs)-1)
		}
	}
}

// TestTornMiddleSegmentErrors proves damage before the end of the log is
// corruption, not a tolerated torn tail.
func TestTornMiddleSegmentErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 64, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append(Record{Type: TypeCommit, ID: "x", Expiry: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	first := filepath.Join(dir, "wal-00000001.log")
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(first, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Replay(dir); err == nil {
		t.Fatal("mid-log truncation replayed without error")
	}
}

// TestCorruptCRCTornTail proves a bit-flip in the final record's payload
// is treated as a torn tail (CRC mismatch), dropping only that record.
func TestCorruptCRCTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypePrepare, ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Record{Type: TypeCommit, ID: "a"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	seg := filepath.Join(dir, "wal-00000001.log")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !torn || len(got) != 1 || got[0].Type != TypePrepare {
		t.Fatalf("torn=%v records=%+v", torn, got)
	}
}

// TestReplayMissingDir proves an absent log directory replays to zero
// records — a cold start is not an error.
func TestReplayMissingDir(t *testing.T) {
	got, torn, err := Replay(filepath.Join(t.TempDir(), "nope"))
	if err != nil || torn || len(got) != 0 {
		t.Fatalf("got %v torn=%v err=%v", got, torn, err)
	}
}

// TestReadAllStream exercises the reader-based decoder used by the fuzz
// harness.
func TestReadAllStream(t *testing.T) {
	buf, err := frame(Record{Type: TypeAbort, ID: "z"})
	if err != nil {
		t.Fatal(err)
	}
	got, torn, err := ReadAll(bytes.NewReader(buf))
	if err != nil || torn || len(got) != 1 || got[0].ID != "z" {
		t.Fatalf("got %+v torn=%v err=%v", got, torn, err)
	}
}
