package wal

import "testing"

// FuzzDecodeStream feeds arbitrary bytes — including truncated and
// bit-flipped frames, the signature of a crash during append — through
// the replay decoder: it must never panic or error, returning only
// records that were completely and correctly framed. This is the
// torn-tail guarantee: a crash mid-write recovers to the last complete
// record instead of replaying garbage.
func FuzzDecodeStream(f *testing.F) {
	clean, _ := frame(Record{Type: TypePrepare, Host: "H1", ID: "H1#1", Expiry: 3,
		Parts: []Part{{Resource: "cpu@H1", ID: 2, Amount: 1}}})
	two := append(append([]byte{}, clean...), clean...)
	f.Add(clean)
	f.Add(two)
	f.Add(two[:len(two)-5])
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add([]byte("not a frame at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, torn, err := decodeStream(data)
		if err != nil {
			t.Fatalf("decodeStream errored on arbitrary input: %v", err)
		}
		// Every decoded record must re-encode: it came from a valid
		// frame, so it is a well-formed Record, not garbage.
		for _, rec := range recs {
			if _, err := frame(rec); err != nil {
				t.Fatalf("decoded record does not re-encode: %v", err)
			}
		}
		// A stream that decodes fully with no torn tail must round-trip
		// its record count when re-framed.
		if !torn {
			var buf []byte
			for _, rec := range recs {
				b, err := frame(rec)
				if err != nil {
					t.Fatal(err)
				}
				buf = append(buf, b...)
			}
			again, torn2, err := decodeStream(buf)
			if err != nil || torn2 || len(again) != len(recs) {
				t.Fatalf("re-framed stream: %d records torn=%v err=%v", len(again), torn2, err)
			}
		}
	})
}
