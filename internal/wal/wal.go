// Package wal is the write-ahead log behind the durable reservation
// books (DESIGN.md "Durability & crash recovery"). It persists the
// prepare/commit/abort/lease/release record stream that the idempotent
// 2PC paths already emit, so a crashed QoSProxy can rebuild its book,
// its idempotency table, and its lease expiries by replay instead of
// forgetting every hold.
//
// The format is deliberately simple: a directory of numbered segment
// files, each an append-only sequence of CRC-framed JSON records:
//
//	[4B big-endian payload length][4B big-endian CRC32(payload)][payload]
//
// Append fsyncs before returning (unless Options.NoSync, for tests), so
// a record returned as appended survives a crash. A crash during append
// leaves a torn tail — a truncated frame or a CRC mismatch at the end of
// the newest segment — which Replay tolerates by returning every record
// up to the last complete one. Corruption anywhere else (a bad frame in
// the middle of a segment, or in an older segment) is an error, not a
// torn tail.
//
// Checkpoint rotates to a fresh segment seeded with a caller-provided
// snapshot of live state and deletes the older segments, bounding replay
// work. Snapshot records are ordinary records: replaying a checkpointed
// log is the same code path as replaying a raw one.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Record type tags. One Record struct covers every type; unused fields
// stay at their zero value and are omitted from the encoding.
const (
	// TypePrepare journals a successful participant prepare: the holds
	// (Parts) taken, under lease until Expiry. Refused prepares are not
	// journaled — they leave no state worth recovering.
	TypePrepare = "prepare"
	// TypeCommit journals a participant commit with the renewed Expiry.
	TypeCommit = "commit"
	// TypeAbort journals a participant abort (holds released) or an
	// abort tombstone for a request never prepared here.
	TypeAbort = "abort"
	// TypeDecide journals the coordinator's commit point, fsynced before
	// the commit fan-out. Only commit decisions are journaled: a request
	// with no decide record is presumed aborted.
	TypeDecide = "decide"
	// TypeLease journals a lease renewal (heartbeat) for a committed
	// reservation on one participant host.
	TypeLease = "lease"
	// TypeRelease journals a clean teardown of a committed reservation
	// on one participant host.
	TypeRelease = "release"
	// TypeShrink journals a mid-session downgrade on one participant
	// host: the reservation's surviving holds (Parts) after surplus was
	// shrunk away. Replay replaces the request's remembered parts whole,
	// so a recovered book carries the post-downgrade amounts.
	TypeShrink = "shrink"
	// TypeSession and TypeSessionEnd journal serving-front-end session
	// lifecycle (cmd/qosserved): the session's hold exports at establish
	// time and its teardown.
	TypeSession    = "session"
	TypeSessionEnd = "session_end"
)

// Link identifies one per-link hold owned by a network reservation.
type Link struct {
	Resource string `json:"resource"`
	ID       uint64 `json:"id"`
}

// Part is one hold of a multi-resource reservation: the broker resource,
// the hold's reservation ID, its amount, and — for network brokers — the
// per-link holds it owns.
type Part struct {
	Resource string  `json:"resource"`
	ID       uint64  `json:"id"`
	Amount   float64 `json:"amount"`
	Links    []Link  `json:"links,omitempty"`
}

// Record is one journaled event. Host names the proxy whose book the
// record belongs to; ID is the 2PC request ID (or serving-session ID for
// session records); Expiry is a broker.Time lease expiry; Outcome
// carries the decide verdict; Parts carries hold detail for prepare and
// session records.
type Record struct {
	Type    string  `json:"type"`
	Host    string  `json:"host,omitempty"`
	ID      string  `json:"id,omitempty"`
	Expiry  float64 `json:"expiry,omitempty"`
	Outcome string  `json:"outcome,omitempty"`
	Parts   []Part  `json:"parts,omitempty"`
}

// Options configures a Log.
type Options struct {
	// Dir is the log directory; created if missing.
	Dir string
	// SegmentBytes is the rotation threshold; a segment that grows past
	// it is closed and a new one started. Zero means 1 MiB.
	SegmentBytes int64
	// NoSync skips the fsync on every append. Only for tests: a NoSync
	// log does not survive a machine crash, though it still survives a
	// process crash.
	NoSync bool
}

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 1 << 20

// maxRecordBytes bounds a single framed payload; a length prefix beyond
// it is treated as corruption rather than an allocation request.
const maxRecordBytes = 1 << 24

const segmentPrefix = "wal-"
const segmentSuffix = ".log"

// Log is an append-only, CRC-framed, segment-rotated record log. Safe
// for concurrent use.
type Log struct {
	opts Options

	mu   sync.Mutex
	f    *os.File
	seq  int
	size int64
}

// Open opens (or creates) the log in opts.Dir and positions appends at
// the end of the newest segment.
func Open(opts Options) (*Log, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("wal: empty directory")
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	segs, err := segments(opts.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{opts: opts, seq: 1}
	if len(segs) > 0 {
		l.seq = segs[len(segs)-1]
	}
	f, err := os.OpenFile(l.segmentPath(l.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.f, l.size = f, st.Size()
	return l, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.opts.Dir }

func (l *Log) segmentPath(seq int) string {
	return filepath.Join(l.opts.Dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
}

// segments lists the segment sequence numbers in dir, ascending.
func segments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: %w", err)
	}
	var out []int
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix))
		if err != nil || n <= 0 {
			continue
		}
		out = append(out, n)
	}
	sort.Ints(out)
	return out, nil
}

// frame encodes one record as [len][crc][payload].
func frame(rec Record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("wal: encode: %w", err)
	}
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	return buf, nil
}

// Append journals one record: frame, write, fsync (unless NoSync),
// rotate when the segment has grown past the threshold. When Append
// returns nil the record is durable in log order.
func (l *Log) Append(rec Record) error {
	buf, err := frame(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(len(buf))
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	if l.size >= l.opts.SegmentBytes {
		return l.rotateLocked()
	}
	return nil
}

// rotateLocked closes the current segment and opens the next.
func (l *Log) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.seq++
	f, err := os.OpenFile(l.segmentPath(l.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	l.f, l.size = f, 0
	return nil
}

// Checkpoint rotates to a fresh segment, seeds it with the given
// snapshot records (ordinary records that replay through the same code
// path), fsyncs once, and deletes every older segment. After a
// checkpoint, replay cost is proportional to live state plus the tail
// written since.
func (l *Log) Checkpoint(snapshot []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: log closed")
	}
	old := l.seq
	if err := l.rotateLocked(); err != nil {
		return err
	}
	for _, rec := range snapshot {
		buf, err := frame(rec)
		if err != nil {
			return err
		}
		if _, err := l.f.Write(buf); err != nil {
			return fmt.Errorf("wal: checkpoint: %w", err)
		}
		l.size += int64(len(buf))
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: checkpoint sync: %w", err)
		}
	}
	segs, err := segments(l.opts.Dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s <= old {
			if err := os.Remove(l.segmentPath(s)); err != nil {
				return fmt.Errorf("wal: checkpoint prune: %w", err)
			}
		}
	}
	return nil
}

// Close closes the current segment. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Replay reads every record in dir in log order. A torn tail — a
// truncated frame or CRC mismatch at the end of the newest segment, the
// signature of a crash mid-append — is tolerated: Replay returns the
// records up to the last complete one and torn=true. The same damage in
// an older segment is corruption and returns an error. A missing or
// empty directory replays to zero records.
func Replay(dir string) (records []Record, torn bool, err error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, false, err
	}
	for i, seq := range segs {
		last := i == len(segs)-1
		path := filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
		recs, segTorn, err := replaySegment(path)
		if err != nil {
			return nil, false, err
		}
		if segTorn && !last {
			return nil, false, fmt.Errorf("wal: segment %s: torn record before end of log", path)
		}
		records = append(records, recs...)
		torn = segTorn
	}
	return records, torn, nil
}

// replaySegment decodes one segment; torn reports an incomplete or
// corrupt trailing region (everything before it decoded cleanly).
func replaySegment(path string) ([]Record, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, fmt.Errorf("wal: %w", err)
	}
	return decodeStream(data)
}

// ReadAll is Replay plus an io.Reader form used by tests: it decodes a
// single framed stream, tolerating a torn tail.
func ReadAll(r io.Reader) ([]Record, bool, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, false, err
	}
	return decodeStream(data)
}

// decodeStream decodes a framed byte stream with torn-tail tolerance.
func decodeStream(data []byte) ([]Record, bool, error) {
	var out []Record
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			return out, true, nil
		}
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		sum := binary.BigEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes || len(data)-off-8 < n {
			return out, true, nil
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return out, true, nil
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return out, true, nil
		}
		out = append(out, rec)
		off += 8 + n
	}
	return out, false, nil
}
