package broker

import (
	"errors"
	"testing"

	"qosres/internal/qos"
	"qosres/internal/topo"
)

func testPool(t *testing.T) *Pool {
	t.Helper()
	p := NewPool(topo.Figure9())
	for i := 1; i <= topo.NumServers; i++ {
		if _, err := p.AddLocal("cpu", topo.ServerHost(i), 100); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range topo.Figure9().Links() {
		if _, err := p.AddLink(l.ID, 100); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestPoolResourceIDs(t *testing.T) {
	if got := LocalResourceID("cpu", "H2"); got != "cpu@H2" {
		t.Fatalf("LocalResourceID = %q", got)
	}
	if got := LinkResourceID("L7"); got != "link:L7" {
		t.Fatalf("LinkResourceID = %q", got)
	}
	if got := NetResourceID("H4", "H1"); got != "net:H4->H1" {
		t.Fatalf("NetResourceID = %q", got)
	}
}

func TestPoolRegistrationAndLookup(t *testing.T) {
	p := testPool(t)
	if _, ok := p.Get("cpu@H1"); !ok {
		t.Fatal("cpu@H1 missing")
	}
	if _, ok := p.Get("link:L7"); !ok {
		t.Fatal("link:L7 missing")
	}
	if _, ok := p.Get("nope"); ok {
		t.Fatal("unknown resource found")
	}
	if got := len(p.Resources()); got != 18 {
		t.Fatalf("resources = %d, want 18 (4 cpus + 14 links)", got)
	}
	if got := len(p.LocalBrokers()); got != 18 {
		t.Fatalf("local brokers = %d", got)
	}
}

func TestPoolRejectsDuplicates(t *testing.T) {
	p := testPool(t)
	if _, err := p.AddLocal("cpu", "H1", 10); err == nil {
		t.Fatal("duplicate local accepted")
	}
	if _, err := p.AddLink("L1", 10); err == nil {
		t.Fatal("duplicate link accepted")
	}
	if _, err := p.AddLink("L99", 10); err == nil {
		t.Fatal("unknown link accepted")
	}
}

func TestPoolNetworkComposition(t *testing.T) {
	p := testPool(t)
	n, err := p.Network("H1", "H2")
	if err != nil {
		t.Fatal(err)
	}
	if n.Resource() != "net:H1->H2" {
		t.Fatalf("resource = %s", n.Resource())
	}
	if got := len(n.Links()); got != 1 {
		t.Fatalf("H1->H2 links = %d, want 1 (direct)", got)
	}
	// Cached on second call.
	n2, err := p.Network("H1", "H2")
	if err != nil || n2 != n {
		t.Fatal("network broker not cached")
	}
	// Now visible in Get.
	if _, ok := p.Get("net:H1->H2"); !ok {
		t.Fatal("network resource not registered")
	}
	// Proxy to domain.
	nd, err := p.Network(topo.ServerHost(1), topo.DomainHost(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(nd.Links()); got != 1 {
		t.Fatalf("H1->D2 links = %d", got)
	}
}

func TestPoolNetworkErrors(t *testing.T) {
	p := NewPool(nil)
	if _, err := p.Network("A", "B"); err == nil {
		t.Fatal("no-topology pool accepted network")
	}
	p2 := testPool(t)
	if _, err := p2.Network("H1", "H1"); err == nil {
		t.Fatal("same-host network accepted")
	}
	if _, err := p2.Network("H1", "ghost"); err == nil {
		t.Fatal("unknown host accepted")
	}
	// Missing link broker.
	p3 := NewPool(topo.Figure9())
	if _, err := p3.Network("H1", "H2"); err == nil {
		t.Fatal("network without link brokers accepted")
	}
}

func TestPoolSnapshot(t *testing.T) {
	p := testPool(t)
	if _, err := p.Network("H1", "H2"); err != nil {
		t.Fatal(err)
	}
	snap, err := p.Snapshot(5, []string{"cpu@H1", "net:H1->H2"})
	if err != nil {
		t.Fatal(err)
	}
	if snap.At != 5 || snap.Avail["cpu@H1"] != 100 || snap.Avail["net:H1->H2"] != 100 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Alpha["cpu@H1"] != 1 {
		t.Fatalf("alpha = %v", snap.Alpha["cpu@H1"])
	}
	if _, err := p.Snapshot(5, []string{"ghost"}); err == nil {
		t.Fatal("snapshot of unknown resource accepted")
	}
}

func TestPoolStaleSnapshot(t *testing.T) {
	p := testPool(t)
	b, _ := p.Get("cpu@H1")
	id, err := b.Reserve(10, 40)
	if err != nil {
		t.Fatal(err)
	}
	_ = id
	// Observed now: 60. Observed as of t=5: 100.
	snap, err := p.StaleSnapshot(20, []string{"cpu@H1"}, map[string]Time{"cpu@H1": 15})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Avail["cpu@H1"] != 100 {
		t.Fatalf("stale avail = %v, want 100 (as of t=5)", snap.Avail["cpu@H1"])
	}
	// Zero lag observes the present.
	snap, err = p.StaleSnapshot(20, []string{"cpu@H1"}, map[string]Time{})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Avail["cpu@H1"] != 60 {
		t.Fatalf("zero-lag avail = %v, want 60", snap.Avail["cpu@H1"])
	}
	if _, err := p.StaleSnapshot(20, []string{"ghost"}, nil); err == nil {
		t.Fatal("stale snapshot of unknown resource accepted")
	}
}

func TestReserveAllAtomicity(t *testing.T) {
	p := testPool(t)
	if _, err := p.Network("H1", "H2"); err != nil {
		t.Fatal(err)
	}
	// cpu@H2 can't satisfy 150: everything must roll back.
	req := qos.ResourceVector{"cpu@H1": 30, "cpu@H2": 150, "net:H1->H2": 20}
	if _, err := p.ReserveAll(1, req); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v", err)
	}
	for _, r := range []string{"cpu@H1", "cpu@H2", "net:H1->H2"} {
		b, _ := p.Get(r)
		if b.Available() != 100 {
			t.Errorf("%s avail = %v after failed ReserveAll", r, b.Available())
		}
	}
	// A feasible request reserves everything; release restores it.
	req["cpu@H2"] = 50
	m, err := p.ReserveAll(2, req)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Resources()); got != 3 {
		t.Fatalf("reserved %d resources", got)
	}
	b, _ := p.Get("net:H1->H2")
	if b.Available() != 80 {
		t.Fatalf("net avail = %v", b.Available())
	}
	if err := m.Release(3); err != nil {
		t.Fatal(err)
	}
	for _, r := range []string{"cpu@H1", "cpu@H2", "net:H1->H2"} {
		b, _ := p.Get(r)
		if b.Available() != 100 {
			t.Errorf("%s avail = %v after release", r, b.Available())
		}
	}
}

func TestReserveAllUnknownResource(t *testing.T) {
	p := testPool(t)
	if _, err := p.ReserveAll(0, qos.ResourceVector{"ghost": 1}); err == nil {
		t.Fatal("unknown resource accepted")
	}
}

func TestReserveAllSkipsZeroAmounts(t *testing.T) {
	p := testPool(t)
	m, err := p.ReserveAll(0, qos.ResourceVector{"cpu@H1": 0, "cpu@H2": 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Resources()); got != 1 {
		t.Fatalf("reserved %d resources, want 1", got)
	}
	_ = m.Release(1)
}

func TestPoolTrimLogs(t *testing.T) {
	p := testPool(t)
	b, _ := p.Get("cpu@H1")
	local := b.(*Local)
	id, _ := local.Reserve(10, 40)
	_ = local.Release(20, id)
	p.TrimLogs(30)
	if got := local.AvailableAt(30); got != 100 {
		t.Fatalf("post-trim baseline = %v", got)
	}
}

func TestStaleSnapshotRescalesAlpha(t *testing.T) {
	// Two identical pools with identical broker histories: one observed
	// stale, one fresh, at the same instant. The stale alpha must equal
	// the fresh alpha rescaled by avail_stale/avail_now, preserving the
	// trend relative to what the proxy believes it sees.
	mk := func() *Pool {
		p := testPool(t)
		b, _ := p.Get("cpu@H1")
		b.Report(0)
		if _, err := b.Reserve(1, 40); err != nil {
			t.Fatal(err)
		}
		return p
	}
	stale, err := mk().StaleSnapshot(2, []string{"cpu@H1"}, map[string]Time{"cpu@H1": 2})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := mk().Snapshot(2, []string{"cpu@H1"})
	if err != nil {
		t.Fatal(err)
	}
	if stale.Avail["cpu@H1"] != 100 || fresh.Avail["cpu@H1"] != 60 {
		t.Fatalf("avails = %v / %v", stale.Avail["cpu@H1"], fresh.Avail["cpu@H1"])
	}
	want := fresh.Alpha["cpu@H1"] * (100.0 / 60.0)
	if got := stale.Alpha["cpu@H1"]; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("stale alpha = %v, want rescaled %v", got, want)
	}
}

func TestStaleSnapshotNegativeLagClamped(t *testing.T) {
	p := testPool(t)
	snap, err := p.StaleSnapshot(5, []string{"cpu@H1"}, map[string]Time{"cpu@H1": -3})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Avail["cpu@H1"] != 100 {
		t.Fatalf("avail = %v", snap.Avail["cpu@H1"])
	}
}
