package broker

// This file is the wait-free read side of the broker layer. Every Local
// broker publishes its externally observable book state — availability,
// capacity, epoch, failure flag, and the instant of the last mutation —
// as an immutable record behind an atomic pointer, replaced (never
// mutated) at the end of every locked book mutation. Hot-path reads
// (Available, AvailableAt(now), Report, Capacity, Failed, Epoch) load
// the record and never touch the stripe mutexes, so the plan-side read
// path scales independently of the commit side.
//
// Consistency. A single atomic load yields an internally consistent
// record: availability, epoch, and failure flag all from the same book
// state. Records are stored under the stripe lock in strictly
// increasing epoch order, and Go's atomics are sequentially consistent,
// so any reader observes a non-decreasing sequence of epochs — an
// observation can be stale, never torn and never travelling backwards.
// Multi-link consistency for Network brokers is layered on top with a
// seqlock-style epoch revalidation (see network.go). Exactness is still
// enforced only at validate-at-commit, which always re-reads the book
// under the stripe locks.
//
// The α report window moved off the stripe too: it lives under a small
// per-broker mutex (alphaMu) with a running sum, so feeding the window
// on every snapshot query — the paper's protocol, preserved — costs a
// short uncontended lock and O(1) arithmetic instead of a stripe
// acquisition and an O(window) sum.

// pubRecord is one published book state. Immutable once stored.
type pubRecord struct {
	// avail is capacity - reserved, or 0 while failed (availLocked).
	avail float64
	// capacity is the capacity in force.
	capacity float64
	// at is the instant of the mutation that produced this record.
	at Time
	// epoch is the broker's mutation count at publication.
	epoch uint64
	// failed mirrors the failure flag.
	failed bool
}

// publishLocked replaces the broker's published record with the current
// book state. Callers must hold the stripe lock; now is the instant of
// the mutation being published.
func (b *Local) publishLocked(now Time) {
	b.pub.Store(&pubRecord{
		avail:    b.availLocked(),
		capacity: b.capacity,
		at:       now,
		epoch:    b.epoch,
		failed:   b.failed,
	})
}

// published returns the current record. It is never nil: construction
// publishes the initial book state.
func (b *Local) published() *pubRecord { return b.pub.Load() }

// CurrentEpoch returns the broker's availability epoch as a wait-free
// read (see Epoch for the meaning). Snapshot caches revalidate against
// it on every query.
func (b *Local) CurrentEpoch() uint64 { return b.published().epoch }

// FeedTick registers one observation tick in the broker's α window —
// exactly the sample Report(now) would have appended — without
// recomputing α. Snapshot caches call it on every cache hit so the α
// window evolves identically whether queries are served from the cache
// or from the broker.
func (b *Local) FeedTick(now Time) {
	avail := b.published().avail
	b.alphaMu.Lock()
	b.alphaFeedLocked(now, avail)
	b.alphaMu.Unlock()
}

// epochReader is the wait-free epoch surface shared by *Local and
// *Network, used by snapshot caches to revalidate entries.
type epochReader interface {
	CurrentEpoch() uint64
}

var (
	_ epochReader = (*Local)(nil)
	_ epochReader = (*Network)(nil)
)
