package broker

import "qosres/internal/qos"

// This file implements the group-commit reservation round: a batch of
// independently planned requirement vectors validated and committed
// against the books in ONE sweep over their lock stripes. Where k
// serialized ReserveAtomic calls acquire (and convoy on) the hot
// resources' locks k times, a batch acquires each distinct stripe
// exactly once, amortizing the lock round — and everything the caller
// does per round, like 2PC fan-out — across all members.
//
// Members stay independent: each is validated in batch order against
// the book *plus* the demand already granted to earlier members of the
// same round, and commits all-or-nothing by itself. A refused member
// leaves no residue and never affects the outcome of the members after
// it beyond the capacity it did not consume.

// BatchStats summarizes the lock amortization of one group-commit
// round.
type BatchStats struct {
	// Members is the number of requirement vectors in the round.
	Members int
	// Admitted is how many of them committed.
	Admitted int
	// StripesLocked is the number of distinct stripes the round
	// acquired — once each, for all members together.
	StripesLocked int
	// StripesSolo is the total number of stripe acquisitions the same
	// members would have performed as individual ReserveAtomic calls;
	// StripesSolo − StripesLocked lock rounds were amortized away.
	StripesSolo int
	// BrokersTouched is the number of distinct Local brokers validated.
	BrokersTouched int
}

// Merge folds another round's stats into s.
func (s *BatchStats) Merge(o BatchStats) {
	s.Members += o.Members
	s.Admitted += o.Admitted
	s.StripesLocked += o.StripesLocked
	s.StripesSolo += o.StripesSolo
	s.BrokersTouched += o.BrokersTouched
}

// ReserveBatch validates and commits a batch of requirement vectors in
// one round over the affected brokers' lock stripes. The returned
// slices are parallel to reqs: out[i] is member i's reservation when it
// was admitted, errs[i] its refusal otherwise (the bottleneck's
// ErrInsufficient, or a resolution error). Each member is all-or-
// nothing — either every hold of its plan is created or none is — and
// validation is exact: a member is admitted only if its aggregate
// demand fits every broker's current book on top of what earlier
// members of the same round were granted, so a round can never
// over-commit any broker (see Local.fitsLocked).
//
// Deadlock freedom: distinct stripes are acquired in ascending
// acquisition-rank order, the package-wide multi-lock order.
func ReserveBatch(now Time, resolve func(string) (Broker, bool), reqs []qos.ResourceVector) ([]*MultiReservation, []error, BatchStats) {
	out := make([]*MultiReservation, len(reqs))
	errs := make([]error, len(reqs))
	stats := BatchStats{Members: len(reqs)}

	// Resolve every member before taking any lock; resolution failures
	// refuse just their member.
	plans := make([]resolvedPlan, len(reqs))
	for i, req := range reqs {
		rp, err := resolvePlan(resolve, req)
		if err != nil {
			errs[i] = err
			continue
		}
		plans[i] = rp
	}

	// The union of the members' stripes, deduplicated: the whole round
	// acquires each one exactly once. soloStripes counts what the same
	// members would have locked individually.
	seenStripe := make(map[*stripe]bool)
	seenBroker := make(map[*Local]bool)
	var stripes []*stripe
	for i := range plans {
		if errs[i] != nil {
			continue
		}
		solo := make(map[*stripe]bool)
		for _, l := range plans[i].locals {
			solo[l.stripe] = true
			if !seenBroker[l] {
				seenBroker[l] = true
			}
			if !seenStripe[l.stripe] {
				seenStripe[l.stripe] = true
				stripes = append(stripes, l.stripe)
			}
		}
		stats.StripesSolo += len(solo)
	}
	stats.StripesLocked = len(stripes)
	stats.BrokersTouched = len(seenBroker)
	sortStripes(stripes)

	lockAll(stripes)
	// Validation sweep: each member is checked against the live book
	// plus the demand granted to earlier members of this round (the
	// books themselves don't move until the commit sweep below).
	granted := make(map[*Local]float64)
	admit := make([]bool, len(plans))
	for i := range plans {
		if errs[i] != nil {
			continue
		}
		rp := plans[i]
		if err := rp.shortfallLocked(granted); err != nil {
			errs[i] = err
			continue
		}
		admit[i] = true
		for l, d := range rp.demand {
			granted[l] += d
		}
	}
	// Commit sweep: every admitted member is now guaranteed to fit.
	for i := range plans {
		if admit[i] {
			out[i] = plans[i].commitLocked(now)
			stats.Admitted++
		}
	}
	unlockAll(stripes)
	return out, errs, stats
}

// ReserveBatchAll is ReserveBatch against the pool's own brokers, with
// each admitted reservation bound to the pool (like ReserveAllAtomic).
func (p *Pool) ReserveBatchAll(now Time, reqs []qos.ResourceVector) ([]*MultiReservation, []error, BatchStats) {
	out, errs, stats := ReserveBatch(now, p.Get, reqs)
	for _, m := range out {
		if m != nil {
			m.pool = p
		}
	}
	return out, errs, stats
}
