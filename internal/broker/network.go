package broker

import (
	"fmt"
	"sort"
	"sync"
)

// Network is an end-to-end network Resource Broker (section 3). At the
// higher level it treats the network path between two end hosts as one
// resource; at the lower level each link on the route is managed by its
// own RSVP-style bandwidth broker (a *Local). The end-to-end availability
// is the minimum of the link availabilities, and an end-to-end
// reservation reserves the bandwidth on every link of the route,
// rolling back if any link refuses.
//
// Per the paper's RSVP-compatibility note, the broker logically lives on
// the receiver-side host; the Pool records that placement.
type Network struct {
	resource    string
	links       []*Local
	alphaWindow Time
	// lockOrder is the distinct lock stripes backing the route's links,
	// sorted by stripe acquisition rank — the package-wide multi-lock
	// order. Available and AvailableAt lock all of them to read a
	// consistent snapshot (see availAll).
	lockOrder []*stripe

	mu      sync.Mutex
	holds   map[ReservationID]netHold
	nextID  ReservationID
	reports []reportSample
}

type linkHold struct {
	link *Local
	id   ReservationID
}

// netHold is one live end-to-end reservation: its per-link holds plus
// an optional lease expiry (zero = no lease). The lease lives at the
// network level; the underlying link holds never carry their own.
type netHold struct {
	links  []linkHold
	expiry Time
}

// NewNetwork creates an end-to-end broker over the given link brokers,
// in route order. The route must be non-empty.
func NewNetwork(resource string, links []*Local) (*Network, error) {
	return NewNetworkWindow(resource, links, DefaultAlphaWindow)
}

// NewNetworkWindow creates an end-to-end broker with an explicit α window.
func NewNetworkWindow(resource string, links []*Local, window Time) (*Network, error) {
	if resource == "" {
		return nil, fmt.Errorf("broker: empty resource name")
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("broker: network resource %s has empty route", resource)
	}
	if window <= 0 {
		return nil, fmt.Errorf("broker: network resource %s has non-positive alpha window %g", resource, float64(window))
	}
	ls := make([]*Local, len(links))
	copy(ls, links)
	// Distinct stripes in ascending acquisition-rank order, the only
	// order in which this package ever acquires multiple stripe locks.
	seen := make(map[*stripe]bool, len(ls))
	order := make([]*stripe, 0, len(ls))
	for _, l := range ls {
		if !seen[l.stripe] {
			seen[l.stripe] = true
			order = append(order, l.stripe)
		}
	}
	sortStripes(order)
	return &Network{
		resource:    resource,
		links:       ls,
		alphaWindow: window,
		lockOrder:   order,
		holds:       make(map[ReservationID]netHold),
	}, nil
}

// Resource implements Broker.
func (n *Network) Resource() string { return n.resource }

// Links returns the underlying link brokers in route order.
func (n *Network) Links() []*Local {
	out := make([]*Local, len(n.links))
	copy(out, n.links)
	return out
}

// Capacity implements Broker: the minimum link capacity, the most the
// end-to-end resource could ever offer.
func (n *Network) Capacity() float64 {
	min := n.links[0].Capacity()
	for _, l := range n.links[1:] {
		if c := l.Capacity(); c < min {
			min = c
		}
	}
	return min
}

// availAll locks every distinct stripe backing the route (in the
// package-wide ascending acquisition-rank order, so it can never
// deadlock against the atomic commit path) and returns the route
// minimum of read(link) as a consistent snapshot. Reading the links one
// lock at a time instead can yield a torn minimum that no instant ever
// exhibited — e.g. a hold moving atomically from one link to another
// would be seen on neither — which is exactly the stale-but-plausible
// lie that admission must not plan against.
func (n *Network) availAll(read func(*Local) float64) float64 {
	lockAll(n.lockOrder)
	min := read(n.links[0])
	for _, l := range n.links[1:] {
		if a := read(l); a < min {
			min = a
		}
	}
	unlockAll(n.lockOrder)
	return min
}

// epochSum reads the sum of the route links' book epochs under one
// consistent all-stripes snapshot. Links appearing several times on the
// route count once.
func (n *Network) epochSum() uint64 {
	lockAll(n.lockOrder)
	var sum uint64
	seen := make(map[*Local]bool, len(n.links))
	for _, l := range n.links {
		if !seen[l] {
			seen[l] = true
			sum += l.epoch
		}
	}
	unlockAll(n.lockOrder)
	return sum
}

// Available implements Broker: the minimum of the link availabilities,
// exactly the paper's rule for network Resource Brokers, read as one
// consistent multi-link snapshot.
func (n *Network) Available() float64 {
	return n.availAll((*Local).availLocked)
}

// AvailableAt implements Broker over the link change logs, read under
// the same consistent snapshot as Available.
func (n *Network) AvailableAt(asOf Time) float64 {
	return n.availAll(func(l *Local) float64 { return l.availableAtLocked(asOf) })
}

// Report implements Broker. The availability is the route minimum; α is
// computed from this broker's own report history of route-minimum values,
// so it reflects the end-to-end trend rather than any single link's.
func (n *Network) Report(now Time) Report {
	avail := n.Available()
	epoch := n.epochSum()
	n.mu.Lock()
	defer n.mu.Unlock()
	alpha := n.alphaLocked(now, avail)
	n.reports = append(n.reports, reportSample{at: now, avail: avail})
	return Report{Resource: n.resource, Avail: avail, Alpha: alpha, At: now, Epoch: epoch}
}

func (n *Network) alphaLocked(now Time, avail float64) float64 {
	cutoff := now - n.alphaWindow
	first := sort.Search(len(n.reports), func(i int) bool { return n.reports[i].at > cutoff })
	if first > 0 {
		n.reports = append(n.reports[:0], n.reports[first:]...)
	}
	if len(n.reports) == 0 {
		return 1.0
	}
	var sum float64
	for _, r := range n.reports {
		sum += r.avail
	}
	avg := sum / float64(len(n.reports))
	if avg <= 0 {
		return 1.0
	}
	return avail / avg
}

// Reserve implements Broker: reserve the amount on every link on the
// route; on any failure roll back the links already reserved and return
// the failing link's error.
func (n *Network) Reserve(now Time, amount float64) (ReservationID, error) {
	if amount < 0 {
		return 0, fmt.Errorf("broker: resource %s: negative reservation %g", n.resource, amount)
	}
	var held []linkHold
	for _, l := range n.links {
		id, err := l.Reserve(now, amount)
		if err != nil {
			n.rollbackLinkHolds(now, held, err)
			return 0, fmt.Errorf("broker: resource %s: link %s refused: %w", n.resource, l.Resource(), err)
		}
		held = append(held, linkHold{link: l, id: id})
	}
	return n.adopt(held), nil
}

// rollbackLinkHolds releases link holds created moments ago by a
// mid-route refusal. These holds were never published in n.holds, so a
// failed release means the hold vanished from its link broker — state
// corruption that would silently leak link bandwidth if ignored. Rather
// than assume "rollback cannot fail", the failure is checked explicitly
// and escalated to a panic carrying the full diagnostic state.
func (n *Network) rollbackLinkHolds(now Time, held []linkHold, cause error) {
	for i := len(held) - 1; i >= 0; i-- {
		h := held[i]
		if err := h.link.Release(now, h.id); err != nil {
			panic(fmt.Sprintf(
				"broker: resource %s: rollback of link %s hold %d failed: %v (refusal being rolled back: %v)",
				n.resource, h.link.Resource(), h.id, err, cause))
		}
	}
}

// adopt publishes a set of per-link holds as one end-to-end
// reservation and returns its ID. The atomic multi-resource commit
// path calls it while still holding the link brokers' stripe locks;
// that is safe because n.mu is only ever acquired after (never before)
// stripe locks anywhere in the package.
func (n *Network) adopt(held []linkHold) ReservationID {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	id := n.nextID
	n.holds[id] = netHold{links: held}
	return id
}

// Release implements Broker.
func (n *Network) Release(now Time, id ReservationID) error {
	n.mu.Lock()
	held, ok := n.holds[id]
	if ok {
		delete(n.holds, id)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("broker: resource %s: reservation %d: %w", n.resource, id, ErrUnknownReservation)
	}
	var firstErr error
	for _, h := range held.links {
		if err := h.link.Release(now, h.id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SetLease implements Leaser for an end-to-end hold. The lease lives on
// the network-level reservation only; the per-link holds it owns stay
// permanent and are released together when the lease expires.
func (n *Network) SetLease(id ReservationID, expiry Time) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.holds[id]
	if !ok {
		return fmt.Errorf("broker: resource %s: reservation %d: %w", n.resource, id, ErrUnknownReservation)
	}
	h.expiry = expiry
	n.holds[id] = h
	return nil
}

// ExpireLeases reclaims every end-to-end hold whose lease expiry is at
// or before now, releasing its per-link holds, and returns the number
// reclaimed. The expired holds are unpublished under n.mu first, so a
// concurrent Release of the same reservation observes
// ErrUnknownReservation rather than a double release.
func (n *Network) ExpireLeases(now Time) int {
	n.mu.Lock()
	var expired []netHold
	for id, h := range n.holds {
		if h.expiry > 0 && h.expiry <= now {
			delete(n.holds, id)
			expired = append(expired, h)
		}
	}
	n.mu.Unlock()
	for _, h := range expired {
		for _, lh := range h.links {
			// The link holds are permanent (no lease of their own) and
			// unpublished, so release cannot race anything.
			_ = lh.link.Release(now, lh.id)
		}
	}
	return len(expired)
}

// Reservations returns the number of live end-to-end reservations.
func (n *Network) Reservations() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.holds)
}
