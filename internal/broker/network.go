package broker

import (
	"fmt"
	"sort"
	"sync"
)

// Network is an end-to-end network Resource Broker (section 3). At the
// higher level it treats the network path between two end hosts as one
// resource; at the lower level each link on the route is managed by its
// own RSVP-style bandwidth broker (a *Local). The end-to-end availability
// is the minimum of the link availabilities, and an end-to-end
// reservation reserves the bandwidth on every link of the route,
// rolling back if any link refuses.
//
// Per the paper's RSVP-compatibility note, the broker logically lives on
// the receiver-side host; the Pool records that placement.
type Network struct {
	resource    string
	links       []*Local
	alphaWindow Time
	// lockOrder is the distinct lock stripes backing the route's links,
	// sorted by stripe acquisition rank — the package-wide multi-lock
	// order. It backs the locked read fallback (see readLockedAll) and
	// the mutation paths; the hot read path validates lock-free instead
	// (see readConsistent).
	lockOrder []*stripe
	// uniq indexes the first occurrence of each distinct link broker on
	// the route (a link can appear several times). Epoch sums iterate it
	// so duplicates count once, without a per-call dedup map.
	uniq []int

	mu       sync.Mutex
	holds    map[ReservationID]netHold
	nextID   ReservationID
	reports  []reportSample
	alphaSum float64
}

type linkHold struct {
	link *Local
	id   ReservationID
}

// netHold is one live end-to-end reservation: its per-link holds plus
// an optional lease expiry (zero = no lease). The lease lives at the
// network level; the underlying link holds never carry their own.
type netHold struct {
	links  []linkHold
	expiry Time
}

// NewNetwork creates an end-to-end broker over the given link brokers,
// in route order. The route must be non-empty.
func NewNetwork(resource string, links []*Local) (*Network, error) {
	return NewNetworkWindow(resource, links, DefaultAlphaWindow)
}

// NewNetworkWindow creates an end-to-end broker with an explicit α window.
func NewNetworkWindow(resource string, links []*Local, window Time) (*Network, error) {
	if resource == "" {
		return nil, fmt.Errorf("broker: empty resource name")
	}
	if len(links) == 0 {
		return nil, fmt.Errorf("broker: network resource %s has empty route", resource)
	}
	if window <= 0 {
		return nil, fmt.Errorf("broker: network resource %s has non-positive alpha window %g", resource, float64(window))
	}
	ls := make([]*Local, len(links))
	copy(ls, links)
	// Distinct stripes in ascending acquisition-rank order, the only
	// order in which this package ever acquires multiple stripe locks.
	seen := make(map[*stripe]bool, len(ls))
	order := make([]*stripe, 0, len(ls))
	for _, l := range ls {
		if !seen[l.stripe] {
			seen[l.stripe] = true
			order = append(order, l.stripe)
		}
	}
	sortStripes(order)
	// First occurrence of each distinct link broker, for dedup'd epoch
	// sums without per-call allocation.
	seenLink := make(map[*Local]bool, len(ls))
	uniq := make([]int, 0, len(ls))
	for i, l := range ls {
		if !seenLink[l] {
			seenLink[l] = true
			uniq = append(uniq, i)
		}
	}
	return &Network{
		resource:    resource,
		links:       ls,
		alphaWindow: window,
		lockOrder:   order,
		uniq:        uniq,
		holds:       make(map[ReservationID]netHold),
	}, nil
}

// Resource implements Broker.
func (n *Network) Resource() string { return n.resource }

// Links returns the underlying link brokers in route order.
func (n *Network) Links() []*Local {
	out := make([]*Local, len(n.links))
	copy(out, n.links)
	return out
}

// Capacity implements Broker: the minimum link capacity, the most the
// end-to-end resource could ever offer.
func (n *Network) Capacity() float64 {
	min := n.links[0].Capacity()
	for _, l := range n.links[1:] {
		if c := l.Capacity(); c < min {
			min = c
		}
	}
	return min
}

// availAll locks every distinct stripe backing the route (in the
// package-wide ascending acquisition-rank order, so it can never
// deadlock against the atomic commit path) and returns the route
// minimum of read(link) as a consistent snapshot. Reading the links one
// lock at a time instead can yield a torn minimum that no instant ever
// exhibited — e.g. a hold moving atomically from one link to another
// would be seen on neither — which is exactly the stale-but-plausible
// lie that admission must not plan against. The hot path avoids it via
// readConsistent; this remains the fallback and the historical-query
// path.
func (n *Network) availAll(read func(*Local) float64) float64 {
	lockAll(n.lockOrder)
	min := read(n.links[0])
	for _, l := range n.links[1:] {
		if a := read(l); a < min {
			min = a
		}
	}
	unlockAll(n.lockOrder)
	return min
}

// readRetries is how many lock-free consistency attempts a multi-link
// read makes before degrading to the locked fallback. Conflicts require
// a commit racing the read on the same route; back-to-back conflicts on
// every attempt are rare enough that the fallback is effectively never
// taken outside adversarial churn.
const readRetries = 4

// tryReadConsistent makes one seqlock-style attempt at a consistent
// lock-free route read. Pass 1 loads each distinct link's published
// record once, accumulating the route-minimum availability and the
// dedup'd epoch sum; pass 2 re-sums the epochs. Epochs are monotone
// non-decreasing and every mutation strictly increases its link's
// epoch, so sum equality proves no link republished between a link's
// two loads; and since all pass-1 loads happen before all pass-2 loads,
// every link was unchanged across the instant separating the passes —
// the pass-1 values coexisted then, i.e. the (min, epoch-sum) pair is a
// consistent cut that availAll under all locks could also have
// observed. The min over distinct links equals the min over the route:
// duplicates contribute the same availability.
func (n *Network) tryReadConsistent() (min float64, epochSum uint64, ok bool) {
	var sum1 uint64
	for k, i := range n.uniq {
		p := n.links[i].published()
		sum1 += p.epoch
		if k == 0 || p.avail < min {
			min = p.avail
		}
	}
	var sum2 uint64
	for _, i := range n.uniq {
		sum2 += n.links[i].published().epoch
	}
	return min, sum1, sum1 == sum2
}

// readConsistent returns a consistent (route-min availability, dedup'd
// epoch sum) pair: lock-free via tryReadConsistent when a quiet window
// is found within readRetries attempts, otherwise exactly once under
// all route stripes.
func (n *Network) readConsistent() (min float64, epochSum uint64) {
	for r := 0; r < readRetries; r++ {
		if min, epochSum, ok := n.tryReadConsistent(); ok {
			return min, epochSum
		}
	}
	lockAll(n.lockOrder)
	min = n.links[0].availLocked()
	for _, l := range n.links[1:] {
		if a := l.availLocked(); a < min {
			min = a
		}
	}
	for _, i := range n.uniq {
		epochSum += n.links[i].epoch
	}
	unlockAll(n.lockOrder)
	return min, epochSum
}

// Available implements Broker: the minimum of the link availabilities,
// exactly the paper's rule for network Resource Brokers, read as one
// consistent multi-link snapshot — lock-free on the hot path.
func (n *Network) Available() float64 {
	min, _ := n.readConsistent()
	return min
}

// AvailableAt implements Broker over the link change logs, read as a
// consistent multi-link snapshot. Queries at or after every link's last
// mutation — the hot "as of now" case — are answered lock-free: each
// published record then equals its link's log value at asOf, and the
// epoch revalidation in tryReadConsistent proves the records coexisted.
// Genuinely historical queries take the locked log walk.
func (n *Network) AvailableAt(asOf Time) float64 {
	for r := 0; r < readRetries; r++ {
		min, current, ok := n.tryReadConsistentAt(asOf)
		if !current {
			break
		}
		if ok {
			return min
		}
	}
	return n.availAll(func(l *Local) float64 { return l.availableAtLocked(asOf) })
}

// tryReadConsistentAt is tryReadConsistent restricted to records no
// newer than asOf. current=false means some link mutated after asOf and
// the published record cannot answer the query.
func (n *Network) tryReadConsistentAt(asOf Time) (min float64, current, ok bool) {
	var sum1 uint64
	for k, i := range n.uniq {
		p := n.links[i].published()
		if p.at > asOf {
			return 0, false, false
		}
		sum1 += p.epoch
		if k == 0 || p.avail < min {
			min = p.avail
		}
	}
	var sum2 uint64
	for _, i := range n.uniq {
		sum2 += n.links[i].published().epoch
	}
	return min, true, sum1 == sum2
}

// CurrentEpoch returns the dedup'd sum of the route links' epochs as a
// wait-free single-pass read. Because every link epoch is monotone
// non-decreasing, a cached epoch sum that equals a later CurrentEpoch
// value proves every sampled link was individually unchanged — sums of
// monotone components collide only when each component is equal — which
// is exactly the revalidation the snapshot cache needs. (A torn read
// across an in-flight commit yields a sum that matches no quiescent
// state, so it can only force a spurious miss, never a false hit.)
func (n *Network) CurrentEpoch() uint64 {
	var sum uint64
	for _, i := range n.uniq {
		sum += n.links[i].published().epoch
	}
	return sum
}

// FeedTick registers one observation tick in the network broker's α
// window — exactly the sample Report(now) would have appended — without
// recomputing α. See Local.FeedTick.
func (n *Network) FeedTick(now Time) {
	avail, _ := n.readConsistent()
	n.mu.Lock()
	n.alphaFeedLocked(now, avail)
	n.mu.Unlock()
}

// Report implements Broker. The availability is the route minimum; α is
// computed from this broker's own report history of route-minimum values,
// so it reflects the end-to-end trend rather than any single link's.
// Availability and epoch sum come from one consistent lock-free read.
func (n *Network) Report(now Time) Report {
	avail, epoch := n.readConsistent()
	n.mu.Lock()
	defer n.mu.Unlock()
	alpha := n.alphaFeedLocked(now, avail)
	return Report{Resource: n.resource, Avail: avail, Alpha: alpha, At: now, Epoch: epoch}
}

// alphaFeedLocked computes α against the window and appends the new
// sample, maintaining the running sum exactly as Local.alphaFeedLocked
// does (in-order resum after prune keeps the value bit-identical to a
// from-scratch recompute). Callers must hold n.mu.
func (n *Network) alphaFeedLocked(now Time, avail float64) float64 {
	cutoff := now - n.alphaWindow
	first := sort.Search(len(n.reports), func(i int) bool { return n.reports[i].at > cutoff })
	if first > 0 {
		n.reports = append(n.reports[:0], n.reports[first:]...)
		var sum float64
		for _, r := range n.reports {
			sum += r.avail
		}
		n.alphaSum = sum
	}
	alpha := 1.0
	if len(n.reports) > 0 {
		if avg := n.alphaSum / float64(len(n.reports)); avg > 0 {
			alpha = avail / avg
		}
	}
	n.reports = append(n.reports, reportSample{at: now, avail: avail})
	n.alphaSum += avail
	return alpha
}

// Reserve implements Broker: reserve the amount on every link on the
// route; on any failure roll back the links already reserved and return
// the failing link's error.
func (n *Network) Reserve(now Time, amount float64) (ReservationID, error) {
	if amount < 0 {
		return 0, fmt.Errorf("broker: resource %s: negative reservation %g", n.resource, amount)
	}
	var held []linkHold
	for _, l := range n.links {
		id, err := l.Reserve(now, amount)
		if err != nil {
			n.rollbackLinkHolds(now, held, err)
			return 0, fmt.Errorf("broker: resource %s: link %s refused: %w", n.resource, l.Resource(), err)
		}
		held = append(held, linkHold{link: l, id: id})
	}
	return n.adopt(held), nil
}

// rollbackLinkHolds releases link holds created moments ago by a
// mid-route refusal. These holds were never published in n.holds, so a
// failed release means the hold vanished from its link broker — state
// corruption that would silently leak link bandwidth if ignored. Rather
// than assume "rollback cannot fail", the failure is checked explicitly
// and escalated to a panic carrying the full diagnostic state.
func (n *Network) rollbackLinkHolds(now Time, held []linkHold, cause error) {
	for i := len(held) - 1; i >= 0; i-- {
		h := held[i]
		if err := h.link.Release(now, h.id); err != nil {
			panic(fmt.Sprintf(
				"broker: resource %s: rollback of link %s hold %d failed: %v (refusal being rolled back: %v)",
				n.resource, h.link.Resource(), h.id, err, cause))
		}
	}
}

// adopt publishes a set of per-link holds as one end-to-end
// reservation and returns its ID. The atomic multi-resource commit
// path calls it while still holding the link brokers' stripe locks;
// that is safe because n.mu is only ever acquired after (never before)
// stripe locks anywhere in the package.
func (n *Network) adopt(held []linkHold) ReservationID {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nextID++
	id := n.nextID
	n.holds[id] = netHold{links: held}
	return id
}

// Release implements Broker.
func (n *Network) Release(now Time, id ReservationID) error {
	n.mu.Lock()
	held, ok := n.holds[id]
	if ok {
		delete(n.holds, id)
	}
	n.mu.Unlock()
	if !ok {
		return fmt.Errorf("broker: resource %s: reservation %d: %w", n.resource, id, ErrUnknownReservation)
	}
	var firstErr error
	for _, h := range held.links {
		if err := h.link.Release(now, h.id); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// SetLease implements Leaser for an end-to-end hold. The lease lives on
// the network-level reservation only; the per-link holds it owns stay
// permanent and are released together when the lease expires.
func (n *Network) SetLease(id ReservationID, expiry Time) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.holds[id]
	if !ok {
		return fmt.Errorf("broker: resource %s: reservation %d: %w", n.resource, id, ErrUnknownReservation)
	}
	h.expiry = expiry
	n.holds[id] = h
	return nil
}

// ExpireLeases reclaims every end-to-end hold whose lease expiry is at
// or before now, releasing its per-link holds, and returns the number
// reclaimed. The expired holds are unpublished under n.mu first, so a
// concurrent Release of the same reservation observes
// ErrUnknownReservation rather than a double release.
func (n *Network) ExpireLeases(now Time) int {
	n.mu.Lock()
	var expired []netHold
	for id, h := range n.holds {
		if h.expiry > 0 && h.expiry <= now {
			delete(n.holds, id)
			expired = append(expired, h)
		}
	}
	n.mu.Unlock()
	for _, h := range expired {
		for _, lh := range h.links {
			// The link holds are permanent (no lease of their own) and
			// unpublished, so release cannot race anything.
			_ = lh.link.Release(now, lh.id)
		}
	}
	return len(expired)
}

// Reservations returns the number of live end-to-end reservations.
func (n *Network) Reservations() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.holds)
}
