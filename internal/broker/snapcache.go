package broker

import (
	"fmt"
	"sync"
	"sync/atomic"

	"qosres/internal/obs"
	"qosres/internal/qos"
)

// This file is the shared snapshot layer on top of the wait-free broker
// reads (publish.go): pooled snapshot buffers so Pool.Snapshot stops
// allocating three maps per query, and SnapshotCache, an
// epoch-validated cache that lets concurrent admissions over the same
// resource set share one Snapshot object instead of building N
// identical ones.

// snapBufPool recycles Snapshot buffers. A pooled snapshot keeps its
// three maps allocated; RecycleSnapshot clears them in place so the
// buckets are reused and steady-state snapshot queries allocate
// nothing.
var snapBufPool = sync.Pool{
	New: func() any {
		return &Snapshot{
			Avail: make(qos.ResourceVector, 8),
			Alpha: make(map[string]float64, 8),
			Epoch: make(map[string]uint64, 8),
		}
	},
}

// grabSnapshot draws an empty snapshot buffer stamped with now.
func grabSnapshot(now Time) *Snapshot {
	s := snapBufPool.Get().(*Snapshot)
	s.At = now
	return s
}

// RecycleSnapshot returns a snapshot produced by Pool.Snapshot or
// Pool.StaleSnapshot to the buffer pool once the caller is done
// planning against it. Recycling is strictly optional — an unrecycled
// snapshot is simply garbage-collected — and must only be done by a
// caller that owns the snapshot exclusively: snapshots served by a
// SnapshotCache are shared between admissions and must never be
// recycled. Synthetic snapshots with nil maps are ignored.
func (p *Pool) RecycleSnapshot(s *Snapshot) {
	if s == nil || s.Avail == nil || s.Alpha == nil || s.Epoch == nil {
		return
	}
	for k := range s.Avail {
		delete(s.Avail, k)
	}
	for k := range s.Alpha {
		delete(s.Alpha, k)
	}
	for k := range s.Epoch {
		delete(s.Epoch, k)
	}
	s.At = 0
	snapBufPool.Put(s)
}

// readFeeder is the wait-free read surface the cache needs from a
// broker: epoch revalidation plus α-window observation ticks. *Local
// and *Network implement it; a pool can in principle hold other Broker
// implementations (synthetic test brokers), whose resource sets the
// cache then simply never caches.
type readFeeder interface {
	epochReader
	FeedTick(now Time)
}

// snapVersion is one published cache entry state: the shared snapshot
// and the epoch vector (parallel to the entry's broker list) it was
// built against. Immutable once stored; rebuilds publish a fresh
// version, copy-on-write, because earlier admissions may still be
// planning against the old snapshot.
type snapVersion struct {
	snap   *Snapshot
	epochs []uint64
}

// snapEntry is the cache's per-resource-set state.
type snapEntry struct {
	resources []string
	brokers   []Broker
	readers   []readFeeder // nil when any broker lacks the read surface
	// mu serializes rebuilds so concurrent misses coalesce into one
	// Report sweep; hits never take it.
	mu  sync.Mutex
	cur atomic.Pointer[snapVersion]
}

// SnapshotCache shares epoch-validated snapshots between concurrent
// admissions of the same resource set. A query loads the entry's
// current version and compares each broker's CurrentEpoch — all
// wait-free reads — against the version's epoch vector: if no epoch
// moved, the books are exactly as the snapshot describes and the same
// Snapshot object is returned again (zero allocations), with each
// broker's α window still fed an observation tick so the availability
// change index evolves identically to uncached querying. Any epoch
// mismatch rebuilds the snapshot from fresh Reports.
//
// Two staleness notes, both by design: a cache hit returns the
// snapshot with its original At stamp and α values (the books are
// unchanged, so the availability is exact; α merely reflects the build
// instant); and between validation and the caller's use a commit may
// move the books — the same TOCTOU window every snapshot-based planner
// already has, closed as always by validate-at-commit.
type SnapshotCache struct {
	pool    *Pool
	metrics *obs.ReadMetrics

	// sources maps the resource-set key to its entry. The map itself is
	// copy-on-write behind an atomic pointer so lookups are lock-free;
	// mu serializes inserts of new resource sets (rare after warmup).
	mu      sync.Mutex
	sources atomic.Pointer[map[string]*snapEntry]
}

// keyBufPool recycles the scratch buffers resource-set keys are built
// in, so cache lookups allocate nothing.
var keyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// NewSnapshotCache creates a snapshot cache over the pool. metrics may
// be nil for an unobserved cache.
func NewSnapshotCache(pool *Pool, metrics *obs.ReadMetrics) *SnapshotCache {
	if metrics == nil {
		metrics = &obs.ReadMetrics{}
	}
	c := &SnapshotCache{pool: pool, metrics: metrics}
	m := make(map[string]*snapEntry)
	c.sources.Store(&m)
	return c
}

// Pool returns the underlying broker pool.
func (c *SnapshotCache) Pool() *Pool { return c.pool }

// Snapshot returns an epoch-validated snapshot of the named resources,
// shared with every other admission that queried the same set since
// the books last changed. The returned snapshot is owned by the cache:
// callers must treat it as immutable and must not recycle it.
func (c *SnapshotCache) Snapshot(now Time, resources []string) (*Snapshot, error) {
	buf := keyBufPool.Get().(*[]byte)
	key := appendKey((*buf)[:0], resources)
	e := (*c.sources.Load())[string(key)]
	*buf = key[:0]
	keyBufPool.Put(buf)
	if e == nil {
		var err error
		if e, err = c.makeEntry(resources); err != nil {
			return nil, err
		}
	}
	if e.readers == nil {
		// Unvalidatable brokers in the set: always build fresh.
		c.metrics.SnapshotMisses.Inc()
		return c.pool.Snapshot(now, resources)
	}
	if v := e.cur.Load(); c.validate(e, v) {
		c.hit(e, now)
		return v.snap, nil
	}
	// Rebuild, coalescing concurrent misses: whoever gets the entry
	// lock rebuilds once; the waiters revalidate and share the result.
	e.mu.Lock()
	defer e.mu.Unlock()
	if v := e.cur.Load(); c.validate(e, v) {
		c.hit(e, now)
		return v.snap, nil
	}
	c.metrics.SnapshotMisses.Inc()
	snap, err := c.pool.Snapshot(now, resources)
	if err != nil {
		return nil, err
	}
	epochs := make([]uint64, len(e.resources))
	for i, r := range e.resources {
		epochs[i] = snap.Epoch[r]
	}
	e.cur.Store(&snapVersion{snap: snap, epochs: epochs})
	return snap, nil
}

// validate reports whether the version's epoch vector still matches
// every broker's current epoch — all wait-free loads. Broker epochs
// are monotone non-decreasing (and, for network brokers, dedup'd sums
// of monotone link epochs), so equality proves the books are exactly
// as the snapshot observed them; any commit since forces a rebuild.
func (c *SnapshotCache) validate(e *snapEntry, v *snapVersion) bool {
	if v == nil {
		return false
	}
	for i, r := range e.readers {
		if r.CurrentEpoch() != v.epochs[i] {
			return false
		}
	}
	return true
}

// hit records a cache hit: the observation still feeds every broker's
// α window, exactly as an uncached Report sweep would, so α dynamics
// are identical with the cache on and off.
func (c *SnapshotCache) hit(e *snapEntry, now Time) {
	for _, r := range e.readers {
		r.FeedTick(now)
	}
	c.metrics.SnapshotHits.Inc()
}

// makeEntry resolves the resource set's brokers and installs an entry
// for it, copy-on-write under c.mu. Unknown resources fail without
// caching anything.
func (c *SnapshotCache) makeEntry(resources []string) (*snapEntry, error) {
	key := string(appendKey(nil, resources))
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := (*c.sources.Load())[key]; e != nil {
		return e, nil
	}
	e := &snapEntry{
		resources: append([]string(nil), resources...),
		brokers:   make([]Broker, len(resources)),
		readers:   make([]readFeeder, len(resources)),
	}
	for i, r := range resources {
		b, ok := c.pool.Get(r)
		if !ok {
			return nil, fmt.Errorf("broker: snapshot of unknown resource %s", r)
		}
		e.brokers[i] = b
		if f, ok := b.(readFeeder); ok {
			e.readers[i] = f
		} else {
			e.readers = nil
			break
		}
	}
	old := *c.sources.Load()
	next := make(map[string]*snapEntry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[key] = e
	c.sources.Store(&next)
	return e, nil
}

// appendKey builds the cache key for a resource set: the IDs joined
// with NUL separators (resource IDs never contain NUL). Order matters
// — callers with a deterministic resource-set order (the admission
// paths) share entries; permuted sets would cache separately, which is
// only a capacity cost, never a correctness one.
func appendKey(dst []byte, resources []string) []byte {
	for i, r := range resources {
		if i > 0 {
			dst = append(dst, 0)
		}
		dst = append(dst, r...)
	}
	return dst
}
