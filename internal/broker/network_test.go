package broker

import (
	"errors"
	"math"
	"strings"
	"testing"

	"qosres/internal/topo"
)

func threeLinks(t *testing.T, caps ...float64) []*Local {
	t.Helper()
	out := make([]*Local, len(caps))
	for i, c := range caps {
		b, err := NewLocal(LinkResourceID(topo.LinkID([]string{"L1", "L2", "L3"}[i%3]+string(rune('a'+i/3)))), c)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func TestNetworkAvailabilityIsRouteMin(t *testing.T) {
	links := threeLinks(t, 100, 60, 80)
	n, err := NewNetwork("net:A->B", links)
	if err != nil {
		t.Fatal(err)
	}
	if n.Available() != 60 {
		t.Fatalf("avail = %v, want min link = 60", n.Available())
	}
	if n.Capacity() != 60 {
		t.Fatalf("capacity = %v, want 60", n.Capacity())
	}
	if got := len(n.Links()); got != 3 {
		t.Fatalf("links = %d", got)
	}
}

func TestNetworkReserveHitsEveryLink(t *testing.T) {
	links := threeLinks(t, 100, 60, 80)
	n, _ := NewNetwork("net:A->B", links)
	id, err := n.Reserve(1, 50)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range links {
		want := []float64{50, 10, 30}[i]
		if l.Available() != want {
			t.Errorf("link %d avail = %v, want %v", i, l.Available(), want)
		}
	}
	if n.Available() != 10 {
		t.Fatalf("end-to-end avail = %v", n.Available())
	}
	if err := n.Release(2, id); err != nil {
		t.Fatal(err)
	}
	for i, l := range links {
		if l.Available() != []float64{100, 60, 80}[i] {
			t.Errorf("link %d not fully released: %v", i, l.Available())
		}
	}
	if n.Reservations() != 0 {
		t.Fatal("leaked end-to-end reservation")
	}
}

func TestNetworkReserveRollsBackOnRefusal(t *testing.T) {
	links := threeLinks(t, 100, 30, 80)
	n, _ := NewNetwork("net:A->B", links)
	if _, err := n.Reserve(1, 50); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	// The first link's tentative reservation must have been rolled back.
	for i, l := range links {
		if l.Available() != []float64{100, 30, 80}[i] {
			t.Errorf("link %d avail = %v after rollback", i, l.Available())
		}
		if l.Reservations() != 0 {
			t.Errorf("link %d leaked a reservation", i)
		}
	}
}

func TestNetworkReleaseUnknown(t *testing.T) {
	n, _ := NewNetwork("net:A->B", threeLinks(t, 10, 10, 10))
	if err := n.Release(0, 42); !errors.Is(err, ErrUnknownReservation) {
		t.Fatalf("err = %v", err)
	}
}

func TestNetworkAvailableAt(t *testing.T) {
	links := threeLinks(t, 100, 60, 80)
	n, _ := NewNetwork("net:A->B", links)
	id, _ := n.Reserve(10, 20)
	_ = n.Release(20, id)
	if got := n.AvailableAt(5); got != 60 {
		t.Fatalf("AvailableAt(5) = %v, want 60", got)
	}
	if got := n.AvailableAt(15); got != 40 {
		t.Fatalf("AvailableAt(15) = %v, want 40", got)
	}
	if got := n.AvailableAt(25); got != 60 {
		t.Fatalf("AvailableAt(25) = %v, want 60", got)
	}
}

func TestNetworkAlphaTracksRouteMin(t *testing.T) {
	links := threeLinks(t, 100, 60, 80)
	n, _ := NewNetworkWindow("net:A->B", links, 3)
	if rep := n.Report(0); rep.Alpha != 1 || rep.Avail != 60 {
		t.Fatalf("first report = %+v", rep)
	}
	id, _ := n.Reserve(1, 30)
	rep := n.Report(2)
	if rep.Avail != 30 {
		t.Fatalf("avail = %v", rep.Avail)
	}
	if rep.Alpha >= 1 {
		t.Fatalf("alpha = %v, want < 1 after drop", rep.Alpha)
	}
	_ = n.Release(3, id)
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork("", threeLinks(t, 1, 1, 1)); err == nil {
		t.Fatal("empty resource accepted")
	}
	if _, err := NewNetwork("net:x", nil); err == nil {
		t.Fatal("empty route accepted")
	}
	if _, err := NewNetworkWindow("net:x", threeLinks(t, 1, 1, 1), 0); err == nil {
		t.Fatal("zero window accepted")
	}
	n, _ := NewNetwork("net:x", threeLinks(t, 1, 1, 1))
	if _, err := n.Reserve(0, -1); err == nil {
		t.Fatal("negative reserve accepted")
	}
}

func TestNetworkSharedLinkContention(t *testing.T) {
	// Two end-to-end resources sharing a middle link contend for it —
	// the real contention the two-level model creates.
	shared, _ := NewLocal("link:S", 100)
	a1, _ := NewLocal("link:A1", 1000)
	b1, _ := NewLocal("link:B1", 1000)
	nA, _ := NewNetwork("net:A", []*Local{a1, shared})
	nB, _ := NewNetwork("net:B", []*Local{shared, b1})

	idA, err := nA.Reserve(1, 70)
	if err != nil {
		t.Fatal(err)
	}
	if nB.Available() != 30 {
		t.Fatalf("net:B avail = %v, want 30 via shared link", nB.Available())
	}
	if _, err := nB.Reserve(2, 40); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("expected contention failure, got %v", err)
	}
	if _, err := nB.Reserve(3, 30); err != nil {
		t.Fatalf("within-shared-capacity reserve failed: %v", err)
	}
	_ = nA.Release(4, idA)
	if nB.Available() != 70 {
		t.Fatalf("after release net:B avail = %v", nB.Available())
	}
}

func TestNetworkAlphaFirstReportIsOne(t *testing.T) {
	n, err := NewNetwork("net:A->B", threeLinks(t, 100, 60, 80))
	if err != nil {
		t.Fatal(err)
	}
	if rep := n.Report(2); rep.Alpha != 1 {
		t.Fatalf("alpha of first report = %v, want 1", rep.Alpha)
	}
}

func TestNetworkAlphaAllZeroWindowWithRecoveredAvailability(t *testing.T) {
	// Same regression guard as the Local case, through the route-minimum
	// availability: all-zero window reports plus recovered availability
	// must give the neutral α, not +Inf.
	n, err := NewNetworkWindow("net:A->B", threeLinks(t, 100, 60, 80), 3)
	if err != nil {
		t.Fatal(err)
	}
	id, err := n.Reserve(0, 60) // saturates the bottleneck link
	if err != nil {
		t.Fatal(err)
	}
	n.Report(0) // route minimum 0 enters the window
	if err := n.Release(1, id); err != nil {
		t.Fatal(err)
	}
	rep := n.Report(1)
	if math.IsInf(rep.Alpha, 0) || math.IsNaN(rep.Alpha) {
		t.Fatalf("alpha = %v, want finite", rep.Alpha)
	}
	if rep.Alpha != 1 {
		t.Fatalf("alpha with all-zero window = %v, want 1 (guard)", rep.Alpha)
	}
}

func TestNetworkReserveLastLinkRefusalRollsBackAllHolds(t *testing.T) {
	// The failure at the *last* link forces rollback of every earlier
	// hold on the route, not just one.
	links := threeLinks(t, 100, 80, 30)
	n, _ := NewNetwork("net:A->B", links)
	if _, err := n.Reserve(1, 50); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	for i, l := range links {
		if got, want := l.Available(), []float64{100, 80, 30}[i]; got != want {
			t.Errorf("link %d avail = %v after rollback, want %v", i, got, want)
		}
		if l.Reservations() != 0 {
			t.Errorf("link %d leaked a reservation", i)
		}
	}
	if n.Reservations() != 0 {
		t.Fatalf("network broker holds %d reservations after refusal", n.Reservations())
	}
}

func TestNetworkRollbackFailurePanicsWithDiagnostics(t *testing.T) {
	// White-box: rollbackLinkHolds must escalate a failed release of a
	// just-created hold — silent continuation would leak link bandwidth
	// invisibly. A bogus hold ID simulates the impossible-by-design state
	// corruption.
	links := threeLinks(t, 100, 80, 60)
	n, _ := NewNetwork("net:A->B", links)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("rollback of an unknown hold did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		for _, want := range []string{"net:A->B", "rollback", "refusal being rolled back"} {
			if !strings.Contains(msg, want) {
				t.Errorf("panic %q missing %q", msg, want)
			}
		}
	}()
	n.rollbackLinkHolds(1, []linkHold{{link: links[0], id: 999}}, ErrInsufficient)
}

// TestNetworkAvailableConsistentSnapshot is the torn-minimum regression
// test: a hold moving atomically between two links of the route (both
// link mutexes held across the move) must never make the end-to-end
// availability appear higher than any real instant exhibited. The old
// per-link locking could observe the hold on neither link and report
// the full capacity.
func TestNetworkAvailableConsistentSnapshot(t *testing.T) {
	links := threeLinks(t, 100, 100)
	l1, l2 := links[0], links[1]
	n, err := NewNetwork("net:A->B", links)
	if err != nil {
		t.Fatal(err)
	}

	// Seed: a 50-unit hold on l1. The writer below moves it back and
	// forth between l1 and l2 atomically, so the true route minimum is
	// exactly 50 at every instant.
	if _, err := l1.Reserve(0, 50); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		onFirst := true
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Move the hold atomically: both link mutexes held, in the
			// package-wide stripe acquisition order.
			l1.stripe.Lock()
			l2.stripe.Lock()
			if onFirst {
				l1.reserved -= 50
				l2.reserved += 50
			} else {
				l2.reserved -= 50
				l1.reserved += 50
			}
			onFirst = !onFirst
			l2.stripe.Unlock()
			l1.stripe.Unlock()
		}
	}()

	for i := 0; i < 20000; i++ {
		if got := n.Available(); got != 50 {
			close(stop)
			<-done
			t.Fatalf("iteration %d: torn minimum %g, want 50 at every instant", i, got)
		}
	}
	close(stop)
	<-done

	if got := n.AvailableAt(0); got != 50 {
		t.Fatalf("AvailableAt(0) = %g, want 50", got)
	}
}
