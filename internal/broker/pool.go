package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"qosres/internal/qos"
	"qosres/internal/topo"
)

// LocalResourceID names a host-local resource, e.g. "cpu@H2".
func LocalResourceID(kind string, host topo.HostID) string {
	return fmt.Sprintf("%s@%s", kind, host)
}

// LinkResourceID names a link bandwidth resource, e.g. "link:L7".
func LinkResourceID(id topo.LinkID) string { return fmt.Sprintf("link:%s", id) }

// NetResourceID names the end-to-end network resource from a sender host
// to a receiver host, e.g. "net:H4->H1". Following the paper's
// RSVP-compatibility rule the broker is held at the receiver side, but
// the ID is directional so distinct sessions' paths stay distinct
// resources.
func NetResourceID(from, to topo.HostID) string { return fmt.Sprintf("net:%s->%s", from, to) }

// Pool is the reservation-enabled environment: the registry of every
// Resource Broker, backed by a topology for composing end-to-end network
// brokers on demand. It is safe for concurrent use.
type Pool struct {
	topology    *topo.Topology
	alphaWindow Time
	// stripes shards the pool's broker books across a fixed set of
	// lock stripes (see stripe.go); brokers are hashed onto stripes by
	// resource ID at registration.
	stripes *StripeSet

	mu     sync.Mutex
	local  map[string]*Local   // host-local resources and links
	net    map[string]*Network // end-to-end network resources, lazily built
	byName map[string]Broker   // every registered broker by resource ID
}

// NewPool creates an empty pool over a topology. The topology may be nil
// for pools that only hold local resources.
func NewPool(topology *topo.Topology) *Pool {
	return NewPoolWindow(topology, DefaultAlphaWindow)
}

// NewPoolWindow creates a pool whose brokers use the given α window and
// the default stripe count.
func NewPoolWindow(topology *topo.Topology, window Time) *Pool {
	return NewPoolStriped(topology, window, DefaultStripes)
}

// NewPoolStriped creates a pool whose broker books are sharded across
// the given number of lock stripes (minimum 1; 1 degenerates to one
// global book lock).
func NewPoolStriped(topology *topo.Topology, window Time, stripes int) *Pool {
	return &Pool{
		topology:    topology,
		alphaWindow: window,
		stripes:     NewStripeSet(stripes),
		local:       make(map[string]*Local),
		net:         make(map[string]*Network),
		byName:      make(map[string]Broker),
	}
}

// StripeCount returns the number of lock stripes the pool's books are
// sharded across.
func (p *Pool) StripeCount() int { return p.stripes.Size() }

// AddLocal registers a broker for a host-local resource and returns it.
func (p *Pool) AddLocal(kind string, host topo.HostID, capacity float64) (*Local, error) {
	return p.addLocal(LocalResourceID(kind, host), capacity)
}

// AddLink registers the bandwidth broker of a topology link.
func (p *Pool) AddLink(id topo.LinkID, capacity float64) (*Local, error) {
	if p.topology != nil {
		if _, ok := p.topology.Link(id); !ok {
			return nil, fmt.Errorf("broker: unknown link %s", id)
		}
	}
	return p.addLocal(LinkResourceID(id), capacity)
}

func (p *Pool) addLocal(resource string, capacity float64) (*Local, error) {
	b, err := newLocalOn(p.stripes.forResource(resource), resource, capacity, p.alphaWindow)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.byName[resource]; dup {
		return nil, fmt.Errorf("broker: duplicate resource %s", resource)
	}
	p.local[resource] = b
	p.byName[resource] = b
	return b, nil
}

// Network returns the end-to-end network broker for traffic from one host
// to another, creating it over the topology route on first use. Every
// link on the route must already have a registered link broker.
func (p *Pool) Network(from, to topo.HostID) (*Network, error) {
	if p.topology == nil {
		return nil, fmt.Errorf("broker: pool has no topology for network resources")
	}
	resource := NetResourceID(from, to)
	p.mu.Lock()
	defer p.mu.Unlock()
	if n, ok := p.net[resource]; ok {
		return n, nil
	}
	route, err := p.topology.Route(from, to)
	if err != nil {
		return nil, err
	}
	if len(route) == 0 {
		return nil, fmt.Errorf("broker: network resource %s has empty route (same host)", resource)
	}
	links := make([]*Local, len(route))
	for i, lid := range route {
		lb, ok := p.local[LinkResourceID(lid)]
		if !ok {
			return nil, fmt.Errorf("broker: link %s on route %s has no broker", lid, resource)
		}
		links[i] = lb
	}
	n, err := NewNetworkWindow(resource, links, p.alphaWindow)
	if err != nil {
		return nil, err
	}
	p.net[resource] = n
	p.byName[resource] = n
	return n, nil
}

// Get returns the broker for a resource ID. End-to-end network resources
// must have been created with Network first.
func (p *Pool) Get(resource string) (Broker, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.byName[resource]
	return b, ok
}

// Resources returns every registered resource ID, sorted.
func (p *Pool) Resources() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.byName))
	for r := range p.byName {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// LocalBrokers returns every local/link broker, sorted by resource ID.
// Network brokers are excluded because they alias link capacity.
func (p *Pool) LocalBrokers() []*Local {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Local, 0, len(p.local))
	for _, b := range p.local {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resource() < out[j].Resource() })
	return out
}

// Snapshot is a consistent-enough view of availability and α for a set of
// resources at one instant, the "snap-shot of end-to-end resource
// requirement and availability" from which a QRG is constructed. Epoch
// carries each resource's book epoch at observation time (see
// stripe.go) when the snapshot's producer recorded it; a nil map means
// the snapshot is synthetic (tests, workload generators) and makes no
// staleness claim.
type Snapshot struct {
	At    Time
	Avail qos.ResourceVector
	Alpha map[string]float64
	Epoch map[string]uint64
}

// Snapshot queries the named resources and returns their reports. Each
// query also feeds the broker's α window, as in the paper's protocol
// where proxies report availability to the main QoSProxy on every session.
// The snapshot's buffers come from a recycling pool; callers that own
// the snapshot exclusively may hand it back with RecycleSnapshot once
// done planning, making steady-state queries allocation-free.
func (p *Pool) Snapshot(now Time, resources []string) (*Snapshot, error) {
	s := grabSnapshot(now)
	for _, r := range resources {
		b, ok := p.Get(r)
		if !ok {
			p.RecycleSnapshot(s)
			return nil, fmt.Errorf("broker: snapshot of unknown resource %s", r)
		}
		rep := b.Report(now)
		s.Avail[r] = rep.Avail
		s.Alpha[r] = rep.Alpha
		s.Epoch[r] = rep.Epoch
	}
	return s, nil
}

// StaleSnapshot is Snapshot with per-resource observation lag: resource r
// is observed as of now-lag[r] (lag 0 meaning current). α is still
// computed at the observation instant's availability against the current
// window, matching the simulation of section 5.2.4 where only the
// availability value is stale.
func (p *Pool) StaleSnapshot(now Time, resources []string, lag map[string]Time) (*Snapshot, error) {
	s := grabSnapshot(now)
	for _, r := range resources {
		b, ok := p.Get(r)
		if !ok {
			p.RecycleSnapshot(s)
			return nil, fmt.Errorf("broker: snapshot of unknown resource %s", r)
		}
		rep := b.Report(now)
		s.Epoch[r] = rep.Epoch
		l := lag[r]
		if l < 0 {
			l = 0
		}
		avail := rep.Avail
		if l > 0 {
			avail = b.AvailableAt(now - l)
		}
		s.Avail[r] = avail
		if rep.Avail > 0 {
			// Rescale α to the stale observation so trend direction is
			// preserved relative to what the proxy believes it sees.
			s.Alpha[r] = rep.Alpha * (avail / rep.Avail)
		} else {
			s.Alpha[r] = rep.Alpha
		}
	}
	return s, nil
}

// MultiReservation is the set of per-resource reservations backing one
// end-to-end multi-resource reservation plan.
type MultiReservation struct {
	pool  *Pool
	parts []multiPart
	// leased records that SetLease armed an expiry on the parts: from
	// then on a part may be reclaimed underneath us by a lease sweep,
	// so Release treats ErrUnknownReservation as already-reclaimed
	// rather than as corruption.
	leased bool
}

type multiPart struct {
	broker Broker
	id     ReservationID
}

// Resources returns the reserved resource IDs in reservation order.
func (m *MultiReservation) Resources() []string {
	out := make([]string, len(m.parts))
	for i, p := range m.parts {
		out[i] = p.broker.Resource()
	}
	return out
}

// Touches returns every underlying concrete resource ID the reservation
// holds capacity on: the reserved resources themselves plus, for
// end-to-end network parts, each link on the route. The repair layer
// matches failed resources against this set to find the sessions a
// fault invalidates.
func (m *MultiReservation) Touches() []string {
	seen := make(map[string]bool, len(m.parts))
	var out []string
	add := func(r string) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	for _, p := range m.parts {
		add(p.broker.Resource())
		if n, ok := p.broker.(*Network); ok {
			for _, l := range n.links {
				add(l.resource)
			}
		}
	}
	return out
}

// SetLease arms (or renews) a lease on every part of the reservation:
// each hold now expires at the given instant unless renewed again by
// the session heartbeat. The first part that is already gone — expired
// by a concurrent lease sweep — aborts with ErrUnknownReservation, the
// signal that the session lost its reservation and must re-establish.
func (m *MultiReservation) SetLease(expiry Time) error {
	m.leased = true
	for _, p := range m.parts {
		l, ok := p.broker.(Leaser)
		if !ok {
			return fmt.Errorf("broker: resource %s: %T does not support leases", p.broker.Resource(), p.broker)
		}
		if err := l.SetLease(p.id, expiry); err != nil {
			return err
		}
	}
	return nil
}

// ReserveAll atomically reserves every (resource, amount) pair of an
// end-to-end reservation plan: if any single reservation fails, all
// reservations already made are rolled back and the error is returned —
// "the failure to reserve one resource leads to the reservation failure
// for the whole distributed service session".
func (p *Pool) ReserveAll(now Time, req qos.ResourceVector) (*MultiReservation, error) {
	m := &MultiReservation{pool: p}
	for _, r := range req.Names() { // sorted for deterministic lock order
		amount := req[r]
		if amount == 0 {
			continue
		}
		b, ok := p.Get(r)
		if !ok {
			m.rollback(now)
			return nil, fmt.Errorf("broker: reserve of unknown resource %s", r)
		}
		id, err := b.Reserve(now, amount)
		if err != nil {
			m.rollback(now)
			return nil, err
		}
		m.parts = append(m.parts, multiPart{broker: b, id: id})
	}
	return m, nil
}

func (m *MultiReservation) rollback(now Time) {
	for i := len(m.parts) - 1; i >= 0; i-- {
		_ = m.parts[i].broker.Release(now, m.parts[i].id)
	}
	m.parts = nil
}

// Release terminates every reservation in the set. On a leased
// reservation an ErrUnknownReservation from a part is benign — the
// lease sweep reclaimed it first — and is skipped so the surviving
// parts are still released; any other error is reported after every
// part has been attempted.
func (m *MultiReservation) Release(now Time) error {
	var firstErr error
	for i := len(m.parts) - 1; i >= 0; i-- {
		if err := m.parts[i].broker.Release(now, m.parts[i].id); err != nil {
			if m.leased && errors.Is(err, ErrUnknownReservation) {
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	m.parts = nil
	return firstErr
}

// TrimLogs bounds every local broker's change log to observations after
// keepAfter; used by long simulation runs.
func (p *Pool) TrimLogs(keepAfter Time) {
	for _, b := range p.LocalBrokers() {
		b.TrimLog(keepAfter)
	}
}

// NetworkBrokers returns every end-to-end network broker created so
// far, sorted by resource ID.
func (p *Pool) NetworkBrokers() []*Network {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Network, 0, len(p.net))
	for _, n := range p.net {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].resource < out[j].resource })
	return out
}

// ExpireLeases sweeps every broker of the pool for leased holds whose
// expiry has passed, reclaiming their capacity, and returns the number
// of leases reclaimed. Network brokers are swept too: their leases
// release the underlying link holds, which never carry leases of their
// own.
func (p *Pool) ExpireLeases(now Time) int {
	total := 0
	for _, n := range p.NetworkBrokers() {
		total += n.ExpireLeases(now)
	}
	for _, b := range p.LocalBrokers() {
		total += b.ExpireLeases(now)
	}
	return total
}
