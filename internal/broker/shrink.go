package broker

import (
	"errors"
	"fmt"

	"qosres/internal/qos"
)

// This file is the delta-renegotiation surface of the broker layer: a
// live hold can be shrunk in place to a smaller amount without ever
// passing through a released state. Shrinking only returns capacity, so
// it needs no availability validation and can never be refused — which
// is what lets a mid-session downgrade release surplus whole while the
// session keeps its (reduced) reservation continuously. Growth is
// deliberately not offered here: an upgrade reserves its delta as a
// fresh hold through the validated 2PC path instead, so a failed
// upgrade leaves the old holds untouched.

// Shrinker is a broker whose live holds can be reduced in place.
type Shrinker interface {
	// Shrink reduces the hold to newAmount, keeping its ID and lease
	// expiry. newAmount <= 0 releases the hold whole; newAmount at or
	// above the current amount is a no-op (a shrink never grows).
	Shrink(now Time, id ReservationID, newAmount float64) error
}

// Shrink implements Shrinker for a local hold.
func (b *Local) Shrink(now Time, id ReservationID, newAmount float64) error {
	if newAmount <= 0 {
		return b.Release(now, id)
	}
	b.stripe.Lock()
	defer b.stripe.Unlock()
	h, ok := b.holds[id]
	if !ok {
		return fmt.Errorf("broker: resource %s: reservation %d: %w", b.resource, id, ErrUnknownReservation)
	}
	if newAmount >= h.amount {
		return nil
	}
	b.holds[id] = hold{amount: newAmount, expiry: h.expiry}
	b.reserved -= h.amount - newAmount
	if b.reserved < 0 {
		b.reserved = 0
	}
	b.logChangeLocked(now)
	return nil
}

// Shrink implements Shrinker for an end-to-end hold: every link hold on
// the route shrinks to the new amount. The hold stays published in
// n.holds throughout (its ID and lease survive); the link holds are
// copied out under n.mu and shrunk after it is dropped, since stripe
// locks are never taken under n.mu.
func (n *Network) Shrink(now Time, id ReservationID, newAmount float64) error {
	if newAmount <= 0 {
		return n.Release(now, id)
	}
	n.mu.Lock()
	h, ok := n.holds[id]
	if !ok {
		n.mu.Unlock()
		return fmt.Errorf("broker: resource %s: reservation %d: %w", n.resource, id, ErrUnknownReservation)
	}
	held := make([]linkHold, len(h.links))
	copy(held, h.links)
	n.mu.Unlock()
	var firstErr error
	for _, lh := range held {
		if err := lh.link.Shrink(now, lh.id, newAmount); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ShrinkTo reduces the reservation to at most the budgeted amount per
// resource: each part keeps min(current, remaining budget) and the
// budget DRAINS IN PLACE in part order, so two parts on the same
// resource (a renegotiated session's kept hold plus its delta) share
// one budget — callers spanning several reservations pass the same
// vector through each. Parts whose keep reaches zero are released and
// dropped from the set. Resources absent from the budget keep nothing.
// Like Release, a leased reservation tolerates parts a concurrent sweep
// already reclaimed.
func (m *MultiReservation) ShrinkTo(now Time, budget qos.ResourceVector) error {
	remaining := budget
	var firstErr error
	kept := m.parts[:0]
	for _, p := range m.parts {
		resource := p.broker.Resource()
		current := 0.0
		switch br := p.broker.(type) {
		case *Local:
			if ex, ok := br.exportHold(p.id); ok {
				current = ex.Amount
			} else if !m.leased {
				if firstErr == nil {
					firstErr = fmt.Errorf("broker: resource %s: reservation %d: %w", resource, p.id, ErrUnknownReservation)
				}
				continue
			} else {
				continue // reclaimed by a sweep; nothing left to shrink
			}
		case *Network:
			if ex, ok := br.exportHold(p.id); ok {
				current = ex.Amount
			} else if !m.leased {
				if firstErr == nil {
					firstErr = fmt.Errorf("broker: resource %s: reservation %d: %w", resource, p.id, ErrUnknownReservation)
				}
				continue
			} else {
				continue
			}
		default:
			if firstErr == nil {
				firstErr = fmt.Errorf("broker: resource %s: %T does not support shrink", resource, p.broker)
			}
			kept = append(kept, p)
			continue
		}
		keep := remaining[resource]
		if keep > current {
			keep = current
		}
		if keep > 0 {
			remaining[resource] -= keep
		}
		s := p.broker.(Shrinker)
		if err := s.Shrink(now, p.id, keep); err != nil {
			if m.leased && errors.Is(err, ErrUnknownReservation) {
				continue
			}
			if firstErr == nil {
				firstErr = err
			}
			kept = append(kept, p)
			continue
		}
		if keep > 0 {
			kept = append(kept, p)
		}
	}
	m.parts = kept
	return firstErr
}
