package broker

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"qosres/internal/qos"
)

// TestExactValidationNoEpsilonOvercommit is the epsilon-drift
// regression test: at exactly-full capacity an eps-sized (1e-9) demand
// must be refused, no matter how many admit/release cycles preceded it.
// The old check (amount <= avail + availEpsilon) admitted one epsilon
// of net new demand per admission at the boundary.
func TestExactValidationNoEpsilonOvercommit(t *testing.T) {
	const capacity = 200.0
	b := mustLocal(t, "cpu", capacity)

	for cycle := 0; cycle < 1000; cycle++ {
		// Fill to exactly the capacity.
		id, err := b.Reserve(Time(cycle), capacity)
		if err != nil {
			t.Fatalf("cycle %d: full-capacity reserve refused: %v", cycle, err)
		}
		// Any eps-scale net new demand at the boundary must be refused.
		if extra, err := b.Reserve(Time(cycle), 1e-9); err == nil {
			t.Fatalf("cycle %d: eps demand admitted at full capacity (id %d, reserved %g > cap %g)",
				cycle, extra, b.Reserved(), capacity)
		} else if !errors.Is(err, ErrInsufficient) {
			t.Fatalf("cycle %d: want ErrInsufficient, got %v", cycle, err)
		}
		if got := b.Reserved(); got > capacity {
			t.Fatalf("cycle %d: book over-committed: reserved %g > capacity %g", cycle, got, capacity)
		}
		if err := b.Release(Time(cycle), id); err != nil {
			t.Fatal(err)
		}
	}
	if got := b.Reserved(); got != 0 {
		t.Fatalf("drained book still holds %g", got)
	}
}

// TestExactValidationAtomicPath covers the same boundary through
// ReserveAtomic: a plan whose aggregate demand exceeds a broker's
// remaining capacity by one epsilon must be refused.
func TestExactValidationAtomicPath(t *testing.T) {
	b := mustLocal(t, "cpu", 150)
	resolve := resolverOf(b)

	full, err := ReserveAtomic(0, resolve, qos.ResourceVector{"cpu": 150})
	if err != nil {
		t.Fatalf("exact-fit plan refused: %v", err)
	}
	if _, err := ReserveAtomic(0, resolve, qos.ResourceVector{"cpu": 1e-9}); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("eps overcommit not refused: %v", err)
	}
	if err := full.Release(0); err != nil {
		t.Fatal(err)
	}
}

// TestExactValidationForgivesFloatNoise: requirements that sum to the
// capacity up to genuine float64 rounding (a relative error around
// 1e-16 per addition) must still be admitted — the exactness fix
// refuses net new demand, not arithmetic noise.
func TestExactValidationForgivesFloatNoise(t *testing.T) {
	const capacity = 300.0
	b := mustLocal(t, "cpu", capacity)
	// 300/0.3 = 1000 holds of 0.3: the running float64 sum drifts a few
	// ULPs around the exact value; every hold must still be admitted.
	const amount = 0.3
	n := int(math.Round(capacity / amount))
	for i := 0; i < n; i++ {
		if _, err := b.Reserve(0, amount); err != nil {
			t.Fatalf("hold %d/%d refused with float-noise sum (reserved %.17g): %v", i, n, b.Reserved(), err)
		}
	}
}

// TestDuplicateResourceIDLockOrder registers two DISTINCT brokers that
// share a resource ID and hammers atomic plans over both from racing
// goroutines. The old comparator (resource-ID only) was not strict-weak
// for this pair, leaving the lock order unspecified between two racing
// commits — a deadlock invitation. The stripe acquisition rank is a
// total order, so the hammer must run to completion.
func TestDuplicateResourceIDLockOrder(t *testing.T) {
	dup1 := mustLocal(t, "gpu", 100) // same resource ID, distinct brokers
	dup2 := mustLocal(t, "gpu", 100)
	if dup1.StripeOrder() == dup2.StripeOrder() {
		t.Fatalf("distinct standalone brokers share a stripe rank %d", dup1.StripeOrder())
	}

	// Two resolvers exposing the duplicate-ID pair under different
	// names, with the pair order swapped: goroutine A resolves a→dup1,
	// b→dup2; goroutine B resolves a→dup2, b→dup1. Both plans touch
	// both brokers, so an order-unstable sort could lock them in
	// opposite orders.
	resolveA := func(r string) (Broker, bool) {
		switch r {
		case "a":
			return dup1, true
		case "b":
			return dup2, true
		}
		return nil, false
	}
	resolveB := func(r string) (Broker, bool) {
		switch r {
		case "a":
			return dup2, true
		case "b":
			return dup1, true
		}
		return nil, false
	}

	req := qos.ResourceVector{"a": 1, "b": 2}
	var wg sync.WaitGroup
	for g, resolve := range []func(string) (Broker, bool){resolveA, resolveB} {
		wg.Add(1)
		go func(g int, resolve func(string) (Broker, bool)) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				m, err := ReserveAtomic(Time(i), resolve, req)
				if err != nil {
					continue // refusal under contention is fine; deadlock is not
				}
				_ = m.Release(Time(i))
			}
		}(g, resolve)
	}
	wg.Wait()

	if dup1.Reserved() != 0 || dup2.Reserved() != 0 {
		t.Fatalf("residue after drain: dup1 %g, dup2 %g", dup1.Reserved(), dup2.Reserved())
	}
}

// TestReserveBatchPerMemberOutcomes: a round whose members cannot all
// fit admits a prefix-feasible subset, refuses the rest with
// ErrInsufficient, and leaves no residue from refused members.
func TestReserveBatchPerMemberOutcomes(t *testing.T) {
	cpu := mustLocal(t, "cpu", 100)
	mem := mustLocal(t, "mem", 100)
	resolve := resolverOf(cpu, mem)

	reqs := []qos.ResourceVector{
		{"cpu": 60, "mem": 10}, // fits
		{"cpu": 60, "mem": 10}, // cpu exhausted by member 0
		{"cpu": 30, "mem": 10}, // fits in what member 1 did not take
		{"cpu": 0, "mem": -1},  // invalid, refused at resolution
	}
	out, errs, stats := ReserveBatch(0, resolve, reqs)

	if out[0] == nil || errs[0] != nil {
		t.Fatalf("member 0 should be admitted: %v", errs[0])
	}
	if out[1] != nil || !errors.Is(errs[1], ErrInsufficient) {
		t.Fatalf("member 1 should be refused with ErrInsufficient, got res=%v err=%v", out[1], errs[1])
	}
	if out[2] == nil || errs[2] != nil {
		t.Fatalf("member 2 should be admitted after member 1's refusal: %v", errs[2])
	}
	if out[3] != nil || errs[3] == nil || errors.Is(errs[3], ErrInsufficient) {
		t.Fatalf("member 3 should be refused at resolution, got res=%v err=%v", out[3], errs[3])
	}
	if stats.Members != 4 || stats.Admitted != 2 {
		t.Fatalf("stats %+v: want Members 4, Admitted 2", stats)
	}
	if stats.BrokersTouched != 2 {
		t.Fatalf("stats %+v: want BrokersTouched 2", stats)
	}
	// Three resolvable members each touch both brokers' stripes; the
	// round acquires each distinct stripe once.
	if stats.StripesSolo <= stats.StripesLocked {
		t.Fatalf("stats %+v: batching should amortize stripe acquisitions", stats)
	}

	if got := cpu.Reserved(); got != 90 {
		t.Fatalf("cpu book %g, want 90 (members 0 and 2 only)", got)
	}
	if got := mem.Reserved(); got != 20 {
		t.Fatalf("mem book %g, want 20", got)
	}
	// Refused members left nothing to release; admitted ones drain
	// back to an empty book.
	if err := out[0].Release(1); err != nil {
		t.Fatal(err)
	}
	if err := out[2].Release(1); err != nil {
		t.Fatal(err)
	}
	if cpu.Reserved() != 0 || mem.Reserved() != 0 || cpu.Reservations() != 0 || mem.Reservations() != 0 {
		t.Fatalf("residue after drain: cpu %g/%d mem %g/%d",
			cpu.Reserved(), cpu.Reservations(), mem.Reserved(), mem.Reservations())
	}
}

// TestReserveBatchNetworkSharedLinks: network members expand to their
// route links and aggregate shared-segment demand within and across
// members of the round.
func TestReserveBatchNetworkSharedLinks(t *testing.T) {
	l1 := mustLocal(t, "link:L1", 100)
	l2 := mustLocal(t, "link:L2", 100)
	n1 := mustNetwork(t, "net:A->B", []*Local{l1, l2})
	n2 := mustNetwork(t, "net:A->C", []*Local{l1})
	resolve := resolverOf(n1, n2)

	reqs := []qos.ResourceVector{
		{"net:A->B": 40, "net:A->C": 30}, // l1: 70, l2: 40
		{"net:A->B": 30},                 // l1: 100 total — exactly full
		{"net:A->C": 1},                  // l1 exhausted
	}
	out, errs, _ := ReserveBatch(0, resolve, reqs)
	if errs[0] != nil || errs[1] != nil {
		t.Fatalf("members 0/1 should fit: %v, %v", errs[0], errs[1])
	}
	if !errors.Is(errs[2], ErrInsufficient) {
		t.Fatalf("member 2 should hit the shared-link bottleneck, got %v", errs[2])
	}
	if got := l1.Reserved(); got != 100 {
		t.Fatalf("shared link book %g, want 100", got)
	}
	if got := l2.Reserved(); got != 70 {
		t.Fatalf("l2 book %g, want 70", got)
	}
	_ = out[0].Release(1)
	_ = out[1].Release(1)
	if l1.Reserved() != 0 || l2.Reserved() != 0 {
		t.Fatalf("residue after drain: l1 %g l2 %g", l1.Reserved(), l2.Reserved())
	}
}

// TestReserveBatchMatchesSerialized: for any batch, the resulting book
// state must be exactly what an equivalent serialized admission order
// (the batch order) produces — same hold multisets, same reserved
// totals, same per-member outcomes.
func TestReserveBatchMatchesSerialized(t *testing.T) {
	build := func() (*Local, *Local, func(string) (Broker, bool)) {
		cpu := mustLocal(t, "cpu", 170)
		net := mustLocal(t, "net", 120)
		return cpu, net, resolverOf(cpu, net)
	}
	reqs := []qos.ResourceVector{
		{"cpu": 55.5, "net": 20},
		{"cpu": 80, "net": 90},
		{"cpu": 55.5, "net": 20}, // refused: cpu would reach 191
		{"cpu": 34, "net": 9.75},
	}

	bCPU, bNet, bResolve := build()
	_, bErrs, _ := ReserveBatch(0, bResolve, reqs)

	sCPU, sNet, sResolve := build()
	sErrs := make([]error, len(reqs))
	for i, r := range reqs {
		_, sErrs[i] = ReserveAtomic(0, sResolve, r)
	}

	for i := range reqs {
		if (bErrs[i] == nil) != (sErrs[i] == nil) {
			t.Fatalf("member %d: batch err %v, serialized err %v", i, bErrs[i], sErrs[i])
		}
	}
	for _, pair := range [][2]*Local{{bCPU, sCPU}, {bNet, sNet}} {
		b, s := pair[0], pair[1]
		if fmt.Sprintf("%v", b.HoldAmounts()) != fmt.Sprintf("%v", s.HoldAmounts()) {
			t.Fatalf("%s hold multisets diverge: batch %v, serialized %v",
				b.Resource(), b.HoldAmounts(), s.HoldAmounts())
		}
		if b.Reserved() != s.Reserved() {
			t.Fatalf("%s reserved diverges: batch %g, serialized %g", b.Resource(), b.Reserved(), s.Reserved())
		}
	}
}

// TestEpochStamping: every availability-affecting mutation advances the
// broker's epoch, reports and snapshots carry it, and an untouched book
// keeps its epoch.
func TestEpochStamping(t *testing.T) {
	b := mustLocal(t, "cpu", 100)
	e0 := b.Epoch()

	id, err := b.Reserve(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if e := b.Epoch(); e != e0+1 {
		t.Fatalf("reserve: epoch %d, want %d", e, e0+1)
	}
	rep := b.Report(1)
	if rep.Epoch != e0+1 {
		t.Fatalf("report epoch %d, want %d", rep.Epoch, e0+1)
	}
	// Reports and availability reads don't move the book.
	if e := b.Epoch(); e != e0+1 {
		t.Fatalf("report moved the epoch to %d", e)
	}
	if err := b.Release(2, id); err != nil {
		t.Fatal(err)
	}
	if e := b.Epoch(); e != e0+2 {
		t.Fatalf("release: epoch %d, want %d", e, e0+2)
	}
	b.Fail(3)
	b.Recover(4)
	if err := b.SetCapacity(5, 80); err != nil {
		t.Fatal(err)
	}
	if e := b.Epoch(); e != e0+5 {
		t.Fatalf("fail+recover+setcapacity: epoch %d, want %d", e, e0+5)
	}
}

// TestSnapshotCarriesEpochs: pool snapshots stamp every resource with
// its book epoch, including network resources (sum of route links).
func TestSnapshotCarriesEpochs(t *testing.T) {
	p := NewPool(nil)
	cpu, err := p.AddLocal("cpu", "H1", 100)
	if err != nil {
		t.Fatal(err)
	}
	snap1, err := p.Snapshot(0, []string{cpu.Resource()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cpu.Reserve(1, 5); err != nil {
		t.Fatal(err)
	}
	snap2, err := p.Snapshot(1, []string{cpu.Resource()})
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Epoch[cpu.Resource()] != snap1.Epoch[cpu.Resource()]+1 {
		t.Fatalf("snapshot epochs %d -> %d, want +1",
			snap1.Epoch[cpu.Resource()], snap2.Epoch[cpu.Resource()])
	}
}

// TestPoolStripeSharing: a pool shards its brokers across its stripe
// set — with one stripe every broker shares it; batches over a
// single-stripe pool still behave correctly.
func TestPoolStripeSharing(t *testing.T) {
	p := NewPoolStriped(nil, DefaultAlphaWindow, 1)
	if p.StripeCount() != 1 {
		t.Fatalf("stripe count %d, want 1", p.StripeCount())
	}
	a, err := p.AddLocal("cpu", "H1", 50)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := p.AddLocal("mem", "H1", 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.stripe != bb.stripe {
		t.Fatal("single-stripe pool gave brokers distinct stripes")
	}
	out, errs, stats := p.ReserveBatchAll(0, []qos.ResourceVector{
		{LocalResourceID("cpu", "H1"): 30, LocalResourceID("mem", "H1"): 30},
		{LocalResourceID("cpu", "H1"): 30},
	})
	if errs[0] != nil || !errors.Is(errs[1], ErrInsufficient) {
		t.Fatalf("outcomes: %v, %v", errs[0], errs[1])
	}
	if stats.StripesLocked != 1 {
		t.Fatalf("stats %+v: want one stripe locked", stats)
	}
	if err := out[0].Release(1); err != nil {
		t.Fatal(err)
	}
}

// TestReserveBatchConcurrentRounds hammers overlapping batches from
// racing goroutines and checks the no-overcommit invariant on every
// book afterward; run with -race this also proves the single-sweep
// locking publishes every hold safely.
func TestReserveBatchConcurrentRounds(t *testing.T) {
	cpu := mustLocal(t, "cpu", 500)
	mem := mustLocal(t, "mem", 500)
	resolve := resolverOf(cpu, mem)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				reqs := []qos.ResourceVector{
					{"cpu": 90, "mem": 10},
					{"cpu": 10, "mem": 90},
					{"cpu": 50, "mem": 50},
				}
				out, _, _ := ReserveBatch(Time(i), resolve, reqs)
				if cpu.Reserved() > 500 || mem.Reserved() > 500 {
					t.Errorf("overcommit: cpu %g mem %g", cpu.Reserved(), mem.Reserved())
				}
				for _, m := range out {
					if m != nil {
						_ = m.Release(Time(i))
					}
				}
			}
		}(g)
	}
	wg.Wait()
	if cpu.Reserved() != 0 || mem.Reserved() != 0 {
		t.Fatalf("residue after drain: cpu %g mem %g", cpu.Reserved(), mem.Reserved())
	}
}
