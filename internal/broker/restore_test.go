package broker

import (
	"reflect"
	"testing"

	"qosres/internal/topo"
)

// poolFixture builds a small pool with one cpu broker and one two-link
// network route, reserving one hold on each.
func restoreFixture(t *testing.T) (*Pool, *MultiReservation) {
	t.Helper()
	top := topo.Figure9()
	pool := NewPool(top)
	cpu, err := pool.AddLocal("cpu", topo.ServerHost(1), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range top.Links() {
		if _, err := pool.AddLink(l.ID, 10); err != nil {
			t.Fatal(err)
		}
	}
	net, err := pool.Network(topo.ServerHost(2), topo.ServerHost(1))
	if err != nil {
		t.Fatal(err)
	}
	cid, err := cpu.Reserve(1, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	nid, err := net.Reserve(1, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	m := &MultiReservation{parts: []multiPart{
		{broker: cpu, id: cid},
		{broker: net, id: nid},
	}}
	if err := m.SetLease(20); err != nil {
		t.Fatal(err)
	}
	return pool, m
}

// bookShape snapshots the externally observable book state of every
// broker the reservation touches.
func bookShape(pool *Pool, m *MultiReservation) map[string][]float64 {
	out := make(map[string][]float64)
	for _, r := range m.Touches() {
		b, ok := pool.Get(r)
		if !ok {
			continue
		}
		if l, ok := b.(*Local); ok {
			out[r] = l.HoldAmounts()
		}
	}
	return out
}

// TestExportRestoreRoundTrip proves a wiped book restored from exports
// is byte-identical to the pre-crash one: same hold IDs, same amounts,
// same lease expiries, and the restored handle still releases cleanly.
func TestExportRestoreRoundTrip(t *testing.T) {
	pool, m := restoreFixture(t)
	before := bookShape(pool, m)
	exports := m.Export()
	if len(exports) != 2 {
		t.Fatalf("exported %d holds, want 2", len(exports))
	}

	// Crash: the owning host forgets its cpu book and its network-level
	// book; the link brokers (owned by no host) keep their holds.
	cpu := m.parts[0].broker.(*Local)
	net := m.parts[1].broker.(*Network)
	cpu.Wipe(2)
	net.Wipe()
	if cpu.Reservations() != 0 || net.Reservations() != 0 {
		t.Fatal("wipe left holds behind")
	}
	for _, l := range net.Links() {
		if l.Reservations() != 1 {
			t.Fatalf("link %s lost its hold on wipe", l.Resource())
		}
	}

	resolve := func(r string) (Broker, bool) { return pool.Get(r) }
	restored, err := RestoreMulti(2, resolve, exports, true)
	if err != nil {
		t.Fatal(err)
	}
	if got := bookShape(pool, restored); !reflect.DeepEqual(got, before) {
		t.Fatalf("restored book differs:\n got %v\nwant %v", got, before)
	}
	if !reflect.DeepEqual(restored.Export(), exports) {
		t.Fatalf("re-export differs:\n got %+v\nwant %+v", restored.Export(), exports)
	}
	// The restored handle must release the exact original holds,
	// including the surviving link holds, leaving everything empty.
	if err := restored.Release(3); err != nil {
		t.Fatal(err)
	}
	if cpu.Reservations() != 0 || net.Reservations() != 0 {
		t.Fatal("release after restore left holds")
	}
	for _, l := range net.Links() {
		if l.Reservations() != 0 {
			t.Fatalf("link %s leaked after restored release", l.Resource())
		}
	}
}

// TestRestoreIdempotent proves re-restoring existing holds is a no-op:
// amounts are not double-counted and IDs stay stable.
func TestRestoreIdempotent(t *testing.T) {
	pool, m := restoreFixture(t)
	exports := m.Export()
	resolve := func(r string) (Broker, bool) { return pool.Get(r) }
	// Restore over a live (never wiped) book: nothing should change.
	if _, err := RestoreMulti(2, resolve, exports, true); err != nil {
		t.Fatal(err)
	}
	cpu := m.parts[0].broker.(*Local)
	if got := cpu.Reserved(); got != 2.5 {
		t.Fatalf("reserved doubled on idempotent restore: %g", got)
	}
	net := m.parts[1].broker.(*Network)
	if net.Reservations() != 1 {
		t.Fatalf("network holds doubled: %d", net.Reservations())
	}
}

// TestWipeKeepsIDAllocator proves holds created after a wipe can never
// collide with IDs a later replay restores.
func TestWipeKeepsIDAllocator(t *testing.T) {
	b, err := NewLocal("cpu@X", 10)
	if err != nil {
		t.Fatal(err)
	}
	id1, err := b.Reserve(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	b.Wipe(2)
	id2, err := b.Reserve(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id1 {
		t.Fatalf("post-wipe reservation reused ID %d", id1)
	}
	if err := b.RestoreHold(3, id1, 1, 0); err != nil {
		t.Fatal(err)
	}
	if b.Reservations() != 2 {
		t.Fatalf("want 2 holds, got %d", b.Reservations())
	}
}

// TestRestoredLeaseExpires proves restored holds keep their lease
// expiries: a sweep after the expiry reclaims them (links included).
func TestRestoredLeaseExpires(t *testing.T) {
	pool, m := restoreFixture(t)
	exports := m.Export()
	m.parts[0].broker.(*Local).Wipe(2)
	m.parts[1].broker.(*Network).Wipe()
	resolve := func(r string) (Broker, bool) { return pool.Get(r) }
	restored, err := RestoreMulti(2, resolve, exports, true)
	if err != nil {
		t.Fatal(err)
	}
	if n := pool.ExpireLeases(25); n != 2 {
		t.Fatalf("swept %d holds, want 2", n)
	}
	for _, r := range restored.Touches() {
		b, _ := pool.Get(r)
		if l, ok := b.(*Local); ok && l.Reservations() != 0 {
			t.Fatalf("resource %s kept a hold past its restored lease", r)
		}
	}
}
