package broker

import (
	"fmt"

	"qosres/internal/qos"
)

// This file implements the validate-at-commit reservation protocol used
// by the admission path under concurrent session establishment.
//
// The paper's three-phase protocol is inherently time-of-check/time-of-
// use: availability is snapshotted (phase 1), a plan is computed against
// the snapshot (phase 2), and only then are reservations made (phase 3).
// Under concurrency the availability can change between snapshot and
// reserve, so phase 3 must re-validate the planned requirement against
// the brokers' *current* state — and it must do so atomically across
// every broker of the plan, or two sessions can interleave their partial
// reservations and refuse each other even though either would fit alone.
//
// ReserveAtomic provides that commit as the one-member special case of
// the group-commit round in batch.go: the requirement is resolved to
// its underlying Local brokers (end-to-end Network resources expand to
// their route links), their distinct lock stripes are acquired in the
// package-wide acquisition-rank order, every broker's aggregate demand
// is validated against its current book, and only then is every hold
// created. A refusal therefore leaves no residue at all, and a success
// can never over-commit any broker.

// atomicPart is one requirement entry of an atomic reservation plan.
type atomicPart struct {
	local  *Local   // set for local/link resources
	net    *Network // set for end-to-end network resources
	amount float64
}

// resolvedPlan is one requirement vector resolved to its underlying
// Local brokers, ready to validate and commit under stripe locks.
type resolvedPlan struct {
	parts []atomicPart
	// demand aggregates the total amount required from each underlying
	// Local broker; the same link can back several network resources of
	// one plan (shared route segments) and must satisfy their sum.
	demand map[*Local]float64
	// locals are the distinct brokers of demand, in first-seen order.
	locals []*Local
}

// resolvePlan expands a requirement vector to the Local brokers backing
// it. No locks are taken.
func resolvePlan(resolve func(string) (Broker, bool), req qos.ResourceVector) (resolvedPlan, error) {
	var rp resolvedPlan
	rp.demand = make(map[*Local]float64)
	need := func(l *Local, amount float64) {
		if _, seen := rp.demand[l]; !seen {
			rp.locals = append(rp.locals, l)
		}
		rp.demand[l] += amount
	}
	for _, r := range req.Names() {
		amount := req[r]
		if amount == 0 {
			continue
		}
		if amount < 0 {
			return resolvedPlan{}, fmt.Errorf("broker: resource %s: negative reservation %g", r, amount)
		}
		b, ok := resolve(r)
		if !ok {
			return resolvedPlan{}, fmt.Errorf("broker: reserve of unknown resource %s", r)
		}
		switch t := b.(type) {
		case *Local:
			need(t, amount)
			rp.parts = append(rp.parts, atomicPart{local: t, amount: amount})
		case *Network:
			for _, l := range t.links {
				need(l, amount)
			}
			rp.parts = append(rp.parts, atomicPart{net: t, amount: amount})
		default:
			return resolvedPlan{}, fmt.Errorf("broker: resource %s: %T does not support atomic reservation", r, b)
		}
	}
	return rp, nil
}

// shortfallLocked validates the plan's aggregate demand against every
// broker's current book and returns the first bottleneck, or nil when
// the whole plan fits. extra carries demand already granted to earlier
// members of the same group-commit round (nil outside a batch).
// Callers must hold the stripe locks of every broker in the plan.
func (rp resolvedPlan) shortfallLocked(extra map[*Local]float64) error {
	// fitsLocked folds in the failure state, so a plan touching a down
	// resource (or one whose capacity collapsed below its holds) is
	// refused here like any other shortfall.
	for _, l := range rp.locals {
		need := rp.demand[l] + extra[l]
		if !l.fitsLocked(need) {
			return fmt.Errorf("broker: resource %s: need %g, have %g: %w",
				l.resource, rp.demand[l], l.availLocked()-extra[l], ErrInsufficient)
		}
	}
	return nil
}

// commitLocked creates every hold of a validated plan. Callers must
// hold the stripe locks of every broker in the plan and have validated
// the plan with shortfallLocked.
func (rp resolvedPlan) commitLocked(now Time) *MultiReservation {
	m := &MultiReservation{}
	for _, p := range rp.parts {
		if p.local != nil {
			m.parts = append(m.parts, multiPart{broker: p.local, id: p.local.reserveLocked(now, p.amount)})
			continue
		}
		held := make([]linkHold, len(p.net.links))
		for i, l := range p.net.links {
			held[i] = linkHold{link: l, id: l.reserveLocked(now, p.amount)}
		}
		m.parts = append(m.parts, multiPart{broker: p.net, id: p.net.adopt(held)})
	}
	return m
}

// ReserveAtomic reserves every (resource, amount) pair of req
// all-or-nothing against the brokers returned by resolve: either every
// hold (including every per-link hold of network resources) is created,
// or none is and the bottleneck's ErrInsufficient is returned. Unlike
// sequential reserve-then-rollback, validation happens before any state
// changes, so concurrent callers never observe — or fail because of —
// partial reservations, and no broker can ever exceed its capacity.
//
// Deadlock freedom: the commit paths (this function, ReserveBatch, and
// Network.availAll) are the only code in the package that holds more
// than one stripe lock at a time, and all acquire distinct stripes in
// ascending acquisition-rank order — a total order even across pools
// and for brokers sharing a resource ID (see stripe.go).
func ReserveAtomic(now Time, resolve func(string) (Broker, bool), req qos.ResourceVector) (*MultiReservation, error) {
	res, errs, _ := ReserveBatch(now, resolve, []qos.ResourceVector{req})
	if errs[0] != nil {
		return nil, errs[0]
	}
	return res[0], nil
}

// ReserveAllAtomic is ReserveAll with commit-time validation: the whole
// requirement is checked against every involved broker's current
// availability under the global lock order before any hold is created.
// See ReserveAtomic for the protocol.
func (p *Pool) ReserveAllAtomic(now Time, req qos.ResourceVector) (*MultiReservation, error) {
	m, err := ReserveAtomic(now, p.Get, req)
	if err != nil {
		return nil, err
	}
	m.pool = p
	return m, nil
}
