package broker

import (
	"fmt"
	"sort"

	"qosres/internal/qos"
)

// This file implements the validate-at-commit reservation protocol used
// by the admission path under concurrent session establishment.
//
// The paper's three-phase protocol is inherently time-of-check/time-of-
// use: availability is snapshotted (phase 1), a plan is computed against
// the snapshot (phase 2), and only then are reservations made (phase 3).
// Under concurrency the availability can change between snapshot and
// reserve, so phase 3 must re-validate the planned requirement against
// the brokers' *current* state — and it must do so atomically across
// every broker of the plan, or two sessions can interleave their partial
// reservations and refuse each other even though either would fit alone.
//
// ReserveAtomic provides that commit: it resolves every requirement to
// its underlying Local brokers (end-to-end Network resources expand to
// their route links), locks all of them in ascending resource-ID order
// (the package-wide multi-lock order, making the commit deadlock-free),
// validates each broker's aggregate demand against its availability, and
// only then creates every hold. A refusal therefore leaves no residue at
// all, and a success can never over-commit any broker.

// atomicPart is one requirement entry of an atomic reservation plan.
type atomicPart struct {
	local  *Local   // set for local/link resources
	net    *Network // set for end-to-end network resources
	amount float64
}

// ReserveAtomic reserves every (resource, amount) pair of req
// all-or-nothing against the brokers returned by resolve: either every
// hold (including every per-link hold of network resources) is created,
// or none is and the bottleneck's ErrInsufficient is returned. Unlike
// sequential reserve-then-rollback, validation happens before any state
// changes, so concurrent callers never observe — or fail because of —
// partial reservations, and no broker can ever exceed its capacity.
//
// Deadlock freedom: this is the only code path in the package that holds
// more than one Local mutex at a time, and it always acquires them in
// ascending resource-ID order.
func ReserveAtomic(now Time, resolve func(string) (Broker, bool), req qos.ResourceVector) (*MultiReservation, error) {
	var parts []atomicPart
	// demand aggregates the total amount required from each underlying
	// Local broker; the same link can back several network resources of
	// one plan (shared route segments) and must satisfy their sum.
	demand := make(map[*Local]float64)
	var locals []*Local
	need := func(l *Local, amount float64) {
		if _, seen := demand[l]; !seen {
			locals = append(locals, l)
		}
		demand[l] += amount
	}
	for _, r := range req.Names() {
		amount := req[r]
		if amount == 0 {
			continue
		}
		if amount < 0 {
			return nil, fmt.Errorf("broker: resource %s: negative reservation %g", r, amount)
		}
		b, ok := resolve(r)
		if !ok {
			return nil, fmt.Errorf("broker: reserve of unknown resource %s", r)
		}
		switch t := b.(type) {
		case *Local:
			need(t, amount)
			parts = append(parts, atomicPart{local: t, amount: amount})
		case *Network:
			for _, l := range t.links {
				need(l, amount)
			}
			parts = append(parts, atomicPart{net: t, amount: amount})
		default:
			return nil, fmt.Errorf("broker: resource %s: %T does not support atomic reservation", r, b)
		}
	}

	sort.Slice(locals, func(i, j int) bool { return locals[i].resource < locals[j].resource })
	for _, l := range locals {
		l.mu.Lock()
	}
	unlock := func() {
		for i := len(locals) - 1; i >= 0; i-- {
			locals[i].mu.Unlock()
		}
	}

	// Validate every broker before committing to any: the whole plan is
	// admitted against current availability, or refused without residue.
	// availLocked folds in the failure state, so a plan touching a down
	// resource (or one whose capacity collapsed below its holds) is
	// refused here like any other shortfall.
	for _, l := range locals {
		if avail := l.availLocked(); demand[l] > avail+availEpsilon {
			unlock()
			return nil, fmt.Errorf("broker: resource %s: need %g, have %g: %w",
				l.resource, demand[l], avail, ErrInsufficient)
		}
	}

	// Commit: every hold is now guaranteed to fit.
	m := &MultiReservation{}
	for _, p := range parts {
		if p.local != nil {
			m.parts = append(m.parts, multiPart{broker: p.local, id: p.local.reserveLocked(now, p.amount)})
			continue
		}
		held := make([]linkHold, len(p.net.links))
		for i, l := range p.net.links {
			held[i] = linkHold{link: l, id: l.reserveLocked(now, p.amount)}
		}
		m.parts = append(m.parts, multiPart{broker: p.net, id: p.net.adopt(held)})
	}
	unlock()
	return m, nil
}

// ReserveAllAtomic is ReserveAll with commit-time validation: the whole
// requirement is checked against every involved broker's current
// availability under the global lock order before any hold is created.
// See ReserveAtomic for the protocol.
func (p *Pool) ReserveAllAtomic(now Time, req qos.ResourceVector) (*MultiReservation, error) {
	m, err := ReserveAtomic(now, p.Get, req)
	if err != nil {
		return nil, err
	}
	m.pool = p
	return m, nil
}
