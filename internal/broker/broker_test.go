package broker

import (
	"errors"
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestLocalReserveRelease(t *testing.T) {
	b, err := NewLocal("cpu@h", 100)
	if err != nil {
		t.Fatal(err)
	}
	if b.Resource() != "cpu@h" || b.Capacity() != 100 || b.Available() != 100 {
		t.Fatal("fresh broker state wrong")
	}
	id, err := b.Reserve(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if b.Available() != 70 {
		t.Fatalf("avail = %v", b.Available())
	}
	if _, err := b.Reserve(2, 71); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("over-reserve err = %v", err)
	}
	if err := b.Release(3, id); err != nil {
		t.Fatal(err)
	}
	if b.Available() != 100 {
		t.Fatalf("after release avail = %v", b.Available())
	}
	if err := b.Release(4, id); !errors.Is(err, ErrUnknownReservation) {
		t.Fatalf("double release err = %v", err)
	}
	if b.Reservations() != 0 {
		t.Fatalf("leaked reservations: %d", b.Reservations())
	}
}

func TestLocalReserveExactCapacity(t *testing.T) {
	b, _ := NewLocal("r", 10)
	if _, err := b.Reserve(0, 10); err != nil {
		t.Fatalf("exact-capacity reserve failed: %v", err)
	}
	if b.Available() != 0 {
		t.Fatalf("avail = %v", b.Available())
	}
	if _, err := b.Reserve(1, 0.0001); !errors.Is(err, ErrInsufficient) {
		t.Fatal("reserve on empty broker must fail")
	}
	// Zero-amount reservations are legal and harmless.
	if _, err := b.Reserve(2, 0); err != nil {
		t.Fatalf("zero reserve: %v", err)
	}
}

func TestLocalRejectsNegative(t *testing.T) {
	b, _ := NewLocal("r", 10)
	if _, err := b.Reserve(0, -1); err == nil {
		t.Fatal("negative reserve accepted")
	}
}

func TestNewLocalValidation(t *testing.T) {
	if _, err := NewLocal("", 1); err == nil {
		t.Fatal("empty resource accepted")
	}
	if _, err := NewLocal("r", -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := NewLocalWindow("r", 1, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestAvailableAtReplaysHistory(t *testing.T) {
	b, _ := NewLocal("r", 100)
	id1, _ := b.Reserve(10, 40) // avail 60 from t=10
	id2, _ := b.Reserve(20, 10) // avail 50 from t=20
	_ = b.Release(30, id1)      // avail 90 from t=30
	_ = b.Release(40, id2)      // avail 100 from t=40

	cases := map[Time]float64{
		0: 100, 5: 100, 10: 60, 15: 60, 20: 50, 25: 50, 30: 90, 35: 90, 40: 100, 99: 100,
	}
	for at, want := range cases {
		if got := b.AvailableAt(at); got != want {
			t.Errorf("AvailableAt(%v) = %v, want %v", at, got, want)
		}
	}
}

func TestAvailableAtSameInstantCoalesces(t *testing.T) {
	b, _ := NewLocal("r", 100)
	_, _ = b.Reserve(5, 10)
	_, _ = b.Reserve(5, 10)
	if got := b.AvailableAt(5); got != 80 {
		t.Fatalf("AvailableAt(5) = %v, want 80 (coalesced)", got)
	}
}

func TestTrimLogKeepsBaseline(t *testing.T) {
	b, _ := NewLocal("r", 100)
	id, _ := b.Reserve(10, 40)
	_ = b.Release(20, id)
	_, _ = b.Reserve(30, 25)
	b.TrimLog(25)
	if got := b.AvailableAt(25); got != 100 {
		t.Fatalf("baseline after trim = %v, want 100", got)
	}
	if got := b.AvailableAt(35); got != 75 {
		t.Fatalf("AvailableAt(35) = %v, want 75", got)
	}
}

func TestAlphaTrendDown(t *testing.T) {
	b, _ := NewLocalWindow("r", 100, 3)
	// First report: empty window, alpha = 1.
	rep := b.Report(0)
	if rep.Alpha != 1 {
		t.Fatalf("first alpha = %v", rep.Alpha)
	}
	// Consume resources, report again within the window: alpha < 1.
	if _, err := b.Reserve(1, 50); err != nil {
		t.Fatal(err)
	}
	rep = b.Report(2)
	if rep.Avail != 50 {
		t.Fatalf("avail = %v", rep.Avail)
	}
	if rep.Alpha >= 1 {
		t.Fatalf("downtrend alpha = %v, want < 1", rep.Alpha)
	}
	if math.Abs(rep.Alpha-0.5) > 1e-9 {
		t.Fatalf("alpha = %v, want 0.5 (50 avail / avg 100)", rep.Alpha)
	}
}

func TestAlphaTrendUp(t *testing.T) {
	b, _ := NewLocalWindow("r", 100, 3)
	id, _ := b.Reserve(0, 80)
	b.Report(0) // reports 20
	_ = b.Release(1, id)
	rep := b.Report(1) // avail 100 vs avg 20
	if rep.Alpha <= 1 {
		t.Fatalf("uptrend alpha = %v, want > 1", rep.Alpha)
	}
}

func TestAlphaWindowExpiry(t *testing.T) {
	b, _ := NewLocalWindow("r", 100, 3)
	_, _ = b.Reserve(0, 50)
	b.Report(0) // 50 within window
	// After the window passes, the old report must not drag alpha.
	rep := b.Report(10)
	if rep.Alpha != 1 {
		t.Fatalf("alpha after window expiry = %v, want 1", rep.Alpha)
	}
}

func TestAlphaZeroAvailability(t *testing.T) {
	b, _ := NewLocalWindow("r", 100, 3)
	_, _ = b.Reserve(0, 100)
	b.Report(0) // reports 0
	rep := b.Report(1)
	if rep.Alpha != 1 {
		t.Fatalf("alpha with zero average = %v, want 1 (guard)", rep.Alpha)
	}
}

func TestLocalConcurrentSafety(t *testing.T) {
	b, _ := NewLocal("r", 1000)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if id, err := b.Reserve(Time(j), 5); err == nil {
					_ = b.Release(Time(j), id)
				}
				b.Report(Time(j))
				b.AvailableAt(Time(j / 2))
			}
		}()
	}
	wg.Wait()
	if b.Available() != 1000 {
		t.Fatalf("avail after churn = %v", b.Available())
	}
	if b.Reservations() != 0 {
		t.Fatalf("leaked %d reservations", b.Reservations())
	}
}

func TestPropertyReserveReleaseConserves(t *testing.T) {
	f := func(amounts []uint8) bool {
		b, _ := NewLocal("r", 10000)
		var ids []ReservationID
		now := Time(0)
		for _, a := range amounts {
			now++
			if id, err := b.Reserve(now, float64(a)); err == nil {
				ids = append(ids, id)
			}
		}
		for _, id := range ids {
			now++
			if err := b.Release(now, id); err != nil {
				return false
			}
		}
		return b.Available() == 10000 && b.Reservations() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAvailabilityNeverNegativeOrExceedsCapacity(t *testing.T) {
	f := func(ops []uint16) bool {
		b, _ := NewLocal("r", 500)
		var ids []ReservationID
		now := Time(0)
		for _, op := range ops {
			now++
			amount := float64(op % 600) // sometimes > capacity
			if op%3 == 0 && len(ids) > 0 {
				_ = b.Release(now, ids[0])
				ids = ids[1:]
				continue
			}
			if id, err := b.Reserve(now, amount); err == nil {
				ids = append(ids, id)
			}
			a := b.Available()
			if a < -1e-9 || a > 500+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaFirstReportIsOne(t *testing.T) {
	b, _ := NewLocal("r", 100)
	// The very first report has an empty averaging window; α must be the
	// neutral 1.0, not a division by zero.
	rep := b.Report(5)
	if rep.Alpha != 1 {
		t.Fatalf("alpha of first report = %v, want 1", rep.Alpha)
	}
}

func TestAlphaAllZeroWindowWithRecoveredAvailability(t *testing.T) {
	// Regression guard for the α = r_avail / r_avg division: a window
	// whose reports are all zero combined with a *nonzero* current
	// availability would yield +Inf without the zero-average guard.
	b, _ := NewLocalWindow("r", 100, 3)
	id, err := b.Reserve(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	b.Report(0) // avail 0 enters the window
	if err := b.Release(1, id); err != nil {
		t.Fatal(err)
	}
	rep := b.Report(1) // avail 100, window average 0
	if math.IsInf(rep.Alpha, 0) || math.IsNaN(rep.Alpha) {
		t.Fatalf("alpha = %v, want finite", rep.Alpha)
	}
	if rep.Alpha != 1 {
		t.Fatalf("alpha with all-zero window = %v, want 1 (guard)", rep.Alpha)
	}
}
