package broker

import "fmt"

// This file is the crash-recovery surface of the broker layer, used by
// the WAL replay path (proxy.Runtime.Recover / CrashRestart):
//
//   - A live reservation can export its holds — resource, reservation
//     ID, amount, lease expiry, and (for network parts) the per-link
//     holds — into plain values a write-ahead log can journal.
//
//   - A book can be wiped (crash amnesia: the in-memory state a dead
//     process forgets) and holds restored from exports with their exact
//     original IDs, so a replayed book is byte-identical to the
//     pre-crash one and coordinator-side handles keep working.
//
// Restore is idempotent per ID: re-restoring a hold that already exists
// is a no-op, which is what makes single-host recovery correct — a host
// crash wipes only the brokers that host owns, while link brokers
// (owned by no host) keep their holds, and the network restore must
// reattach to them rather than double-reserve.

// LinkExport identifies one per-link hold of a network reservation.
type LinkExport struct {
	Resource string
	ID       ReservationID
}

// HoldExport is one hold of a reservation in journalable form.
type HoldExport struct {
	Resource string
	ID       ReservationID
	Amount   float64
	Expiry   Time
	Links    []LinkExport
}

// Export returns the reservation's holds as journalable exports, in
// part order. Amounts and expiries are read under the owning brokers'
// locks; for a network part the amount is the common per-link amount.
func (m *MultiReservation) Export() []HoldExport {
	out := make([]HoldExport, 0, len(m.parts))
	for _, p := range m.parts {
		switch br := p.broker.(type) {
		case *Local:
			if ex, ok := br.exportHold(p.id); ok {
				out = append(out, ex)
			}
		case *Network:
			if ex, ok := br.exportHold(p.id); ok {
				out = append(out, ex)
			}
		}
	}
	return out
}

// exportHold snapshots one local hold.
func (b *Local) exportHold(id ReservationID) (HoldExport, bool) {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	h, ok := b.holds[id]
	if !ok {
		return HoldExport{}, false
	}
	return HoldExport{Resource: b.resource, ID: id, Amount: h.amount, Expiry: h.expiry}, true
}

// exportHold snapshots one end-to-end hold with its link holds. The
// per-link amount is read after dropping n.mu (stripe locks are never
// taken under it).
func (n *Network) exportHold(id ReservationID) (HoldExport, bool) {
	n.mu.Lock()
	h, ok := n.holds[id]
	if !ok {
		n.mu.Unlock()
		return HoldExport{}, false
	}
	links := make([]LinkExport, len(h.links))
	held := make([]linkHold, len(h.links))
	copy(held, h.links)
	for i, lh := range h.links {
		links[i] = LinkExport{Resource: lh.link.resource, ID: lh.id}
	}
	expiry := h.expiry
	n.mu.Unlock()
	amount := 0.0
	if len(held) > 0 {
		if ex, ok := held[0].link.exportHold(held[0].id); ok {
			amount = ex.Amount
		}
	}
	return HoldExport{Resource: n.resource, ID: id, Amount: amount, Expiry: expiry, Links: links}, true
}

// RestoreHold re-creates a hold with its exact original ID, bumping the
// ID allocator past it so future holds never collide. Restoring an ID
// that is already held is a no-op (idempotent replay).
func (b *Local) RestoreHold(now Time, id ReservationID, amount float64, expiry Time) error {
	if amount < 0 {
		return fmt.Errorf("broker: resource %s: restore: negative amount %g", b.resource, amount)
	}
	if id == 0 {
		return fmt.Errorf("broker: resource %s: restore: zero reservation ID", b.resource)
	}
	b.stripe.Lock()
	defer b.stripe.Unlock()
	if id > b.nextID {
		b.nextID = id
	}
	if _, exists := b.holds[id]; exists {
		return nil
	}
	b.holds[id] = hold{amount: amount, expiry: expiry}
	b.reserved += amount
	b.logChangeLocked(now)
	return nil
}

// RestoreHold re-creates an end-to-end hold from its export: each link
// hold is restored (or reattached, if it survived — link brokers are
// owned by no host, so a host crash leaves them intact) with its exact
// ID, then the network-level hold is republished under the original
// network reservation ID. Idempotent per ID.
func (n *Network) RestoreHold(now Time, ex HoldExport) error {
	if ex.ID == 0 {
		return fmt.Errorf("broker: resource %s: restore: zero reservation ID", n.resource)
	}
	byRes := make(map[string]*Local, len(n.links))
	for _, l := range n.links {
		byRes[l.resource] = l
	}
	held := make([]linkHold, 0, len(ex.Links))
	for _, le := range ex.Links {
		l, ok := byRes[le.Resource]
		if !ok {
			return fmt.Errorf("broker: resource %s: restore: link %s not on route", n.resource, le.Resource)
		}
		// Link holds never carry a lease of their own (the network-level
		// lease governs them), hence expiry zero.
		if err := l.RestoreHold(now, le.ID, ex.Amount, 0); err != nil {
			return err
		}
		held = append(held, linkHold{link: l, id: le.ID})
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if ex.ID > n.nextID {
		n.nextID = ex.ID
	}
	if _, exists := n.holds[ex.ID]; exists {
		return nil
	}
	n.holds[ex.ID] = netHold{links: held, expiry: ex.Expiry}
	return nil
}

// Wipe models crash amnesia: the book forgets every hold without
// releasing anything. The ID allocator is NOT reset, so holds created
// after the wipe can never collide with IDs a later replay restores.
func (b *Local) Wipe(now Time) {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	if len(b.holds) == 0 && b.reserved == 0 {
		return
	}
	b.holds = make(map[ReservationID]hold)
	b.reserved = 0
	b.logChangeLocked(now)
}

// Wipe models crash amnesia for the end-to-end book: the network-level
// holds are forgotten WITHOUT releasing their link holds — the link
// brokers live outside the crashed host and genuinely keep their
// bandwidth reserved, which is exactly the leak that replay (or the
// lease sweep) must repair.
func (n *Network) Wipe() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.holds = make(map[ReservationID]netHold)
}

// RestoreMulti rebuilds a reservation from its journaled exports,
// resolving each resource through the supplied lookup (typically a
// host's deployed-broker table). Holds come back with their exact
// original IDs; leased marks the result as lease-governed so Release
// tolerates parts already reclaimed by a sweep.
func RestoreMulti(now Time, resolve func(string) (Broker, bool), exports []HoldExport, leased bool) (*MultiReservation, error) {
	m := &MultiReservation{leased: leased}
	for _, ex := range exports {
		b, ok := resolve(ex.Resource)
		if !ok {
			return nil, fmt.Errorf("broker: restore of unknown resource %s", ex.Resource)
		}
		switch br := b.(type) {
		case *Local:
			if err := br.RestoreHold(now, ex.ID, ex.Amount, ex.Expiry); err != nil {
				return nil, err
			}
		case *Network:
			if err := br.RestoreHold(now, ex); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("broker: resource %s: %T does not support restore", ex.Resource, b)
		}
		m.parts = append(m.parts, multiPart{broker: b, id: ex.ID})
	}
	return m, nil
}
