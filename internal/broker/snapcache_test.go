package broker

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"qosres/internal/obs"
)

// readTestPool builds the standard figure-9 test pool plus one network
// resource, returning the pool and the resource set an admission would
// snapshot.
func readTestPool(t *testing.T) (*Pool, []string) {
	t.Helper()
	p := testPool(t)
	n, err := p.Network("H4", "H1")
	if err != nil {
		t.Fatal(err)
	}
	return p, []string{"cpu@H1", "cpu@H4", n.Resource()}
}

func TestSnapshotCacheHitSharesObjectAndRevalidates(t *testing.T) {
	p, res := readTestPool(t)
	reg := obs.New()
	c := NewSnapshotCache(p, obs.NewReadMetrics(reg))

	s1, err := c.Snapshot(1, res)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := c.Snapshot(2, res)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatal("unchanged books: cache returned a different snapshot object")
	}
	if s2.Avail["cpu@H1"] != 100 {
		t.Fatalf("cached avail = %g, want 100", s2.Avail["cpu@H1"])
	}

	// A commit moves the book: the next query must rebuild and see it.
	b, _ := p.Get("cpu@H1")
	if _, err := b.Reserve(3, 10); err != nil {
		t.Fatal(err)
	}
	s3, err := c.Snapshot(4, res)
	if err != nil {
		t.Fatal(err)
	}
	if s3 == s2 {
		t.Fatal("epoch moved but the cache served the stale snapshot")
	}
	if s3.Avail["cpu@H1"] != 90 {
		t.Fatalf("rebuilt avail = %g, want 90", s3.Avail["cpu@H1"])
	}

	counts := metricValues(t, reg)
	if counts[obs.MetricSnapshotCacheHits] != 1 || counts[obs.MetricSnapshotCacheMisses] != 2 {
		t.Fatalf("hits/misses = %g/%g, want 1/2",
			counts[obs.MetricSnapshotCacheHits], counts[obs.MetricSnapshotCacheMisses])
	}

	// Unknown resources fail without caching.
	if _, err := c.Snapshot(5, []string{"nope"}); err == nil {
		t.Fatal("unknown resource did not error")
	}
}

// metricValues flattens a registry snapshot into name -> summed value.
func metricValues(t *testing.T, reg *obs.Registry) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		out[c.Name] += c.Value
	}
	return out
}

// TestSnapshotCacheZeroAllocsSteadyState pins the read-path allocation
// contract: once the entry exists and the α-window sample slices have
// reached their steady capacity, a cache hit allocates nothing — no
// maps, no key buffers, no samples.
func TestSnapshotCacheZeroAllocsSteadyState(t *testing.T) {
	p, res := readTestPool(t)
	c := NewSnapshotCache(p, nil)

	now := Time(0)
	query := func() {
		now++ // advance so the α windows prune and stay bounded
		if _, err := c.Snapshot(now, res); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		query() // warm: build the entry, stabilize sample capacities
	}
	if allocs := testing.AllocsPerRun(200, query); allocs != 0 {
		t.Fatalf("cached snapshot path allocates %g per query, want 0", allocs)
	}
}

// TestSnapshotCacheAlphaParity proves the observation-tick feeding
// contract: a workload queried through the cache leaves every broker's
// α window in exactly the state the uncached workload does, so the α
// trajectory (and everything planned from it) converges identically
// with the cache on and off.
func TestSnapshotCacheAlphaParity(t *testing.T) {
	pc, res := readTestPool(t)
	pu, _ := readTestPool(t)
	c := NewSnapshotCache(pc, nil)

	run := func(p *Pool, snap func(now Time) (*Snapshot, error)) {
		t.Helper()
		for now := Time(1); now <= 40; now++ {
			if _, err := snap(now); err != nil {
				t.Fatal(err)
			}
			if int(now)%7 == 0 {
				b, _ := p.Get("cpu@H1")
				if _, err := b.Reserve(now, 5); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	run(pc, func(now Time) (*Snapshot, error) { return c.Snapshot(now, res) })
	run(pu, func(now Time) (*Snapshot, error) { return pu.Snapshot(now, res) })

	sc, err := pc.Snapshot(41, res)
	if err != nil {
		t.Fatal(err)
	}
	su, err := pu.Snapshot(41, res)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc.Alpha, su.Alpha) {
		t.Fatalf("α diverged with the cache on:\ncached:   %v\nuncached: %v", sc.Alpha, su.Alpha)
	}
	if !reflect.DeepEqual(sc.Avail, su.Avail) {
		t.Fatalf("availability diverged:\ncached:   %v\nuncached: %v", sc.Avail, su.Avail)
	}
}

// TestPublishedReadsTornFreeUnderContention is the seqlock
// linearizability stress: 16 wait-free readers race 16 reserving and
// releasing writers on a Local and a Network broker. No reader may ever
// observe an availability outside [0, capacity] or an epoch older than
// one it already observed. Run under -race in CI, this also pins the
// atomic publication against torn reads.
func TestPublishedReadsTornFreeUnderContention(t *testing.T) {
	p, _ := readTestPool(t)
	lb, _ := p.Get("cpu@H1")
	local := lb.(*Local)
	net, err := p.Network("H4", "H1")
	if err != nil {
		t.Fatal(err)
	}

	const (
		readers = 16
		writers = 16
		rounds  = 400
	)
	var (
		tick Time // strictly increasing logical clock, under mu
		mu   sync.Mutex
		done atomic.Bool
		wwg  sync.WaitGroup // writers
		rwg  sync.WaitGroup // readers
		errs = make(chan string, readers+writers)
	)
	next := func() Time {
		mu.Lock()
		tick++
		now := tick
		mu.Unlock()
		return now
	}

	check := func(what string, avail, capacity float64) bool {
		if avail < 0 || avail > capacity {
			errs <- what
			return false
		}
		return true
	}
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < rounds; i++ {
				var b Broker = local
				if w%2 == 0 {
					b = net
				}
				id, err := b.Reserve(next(), 1)
				if err == nil {
					if err := b.Release(next(), id); err != nil {
						errs <- "release: " + err.Error()
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var lastLocal, lastNet uint64
			for !done.Load() {
				pr := local.published()
				if !check("local torn read", pr.avail, pr.capacity) {
					return
				}
				if pr.epoch < lastLocal {
					errs <- "local epoch went backwards"
					return
				}
				lastLocal = pr.epoch
				if !check("local Available", local.Available(), local.Capacity()) {
					return
				}
				if !check("network Available", net.Available(), 100) {
					return
				}
				if e := net.CurrentEpoch(); e < lastNet {
					errs <- "network epoch went backwards"
					return
				} else {
					lastNet = e
				}
				now := next()
				if rep := local.Report(now); !check("local Report", rep.Avail, local.Capacity()) {
					return
				}
				if !check("local AvailableAt", local.AvailableAt(now), local.Capacity()) {
					return
				}
			}
		}()
	}

	// Writers are bounded by rounds; once they drain, stop the readers.
	wwg.Wait()
	done.Store(true)
	rwg.Wait()

	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
