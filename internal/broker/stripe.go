package broker

import (
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// This file shards the reservation books across lock stripes. Every
// Local broker is backed by exactly one stripe — possibly shared with
// other brokers of its pool — and all book mutations happen under the
// stripe's mutex. Striping decouples the number of brokers from the
// number of locks: a pool with thousands of resources contends on a
// fixed set of stripes, and the multi-broker commit path (ReserveBatch,
// ReserveAtomic, Network.availAll) acquires each distinct stripe once
// no matter how many of its brokers a plan touches.
//
// Lock ordering. Each stripe carries a globally unique, monotonically
// assigned acquisition rank (order). Any code path holding more than
// one stripe sorts the distinct stripes by that rank first — a total,
// strict-weak order even when brokers share a resource ID or live in
// different pools, which the old ascending-resource-ID order could not
// guarantee (two distinct brokers with the same ID left the order
// unspecified, an invitation to deadlock).
//
// Epochs. Every stripe and every broker carries an epoch counter,
// bumped (under the stripe lock) on each availability-affecting book
// mutation. Epochs stamp availability snapshots (Report.Epoch,
// Snapshot.Epoch) so consumers can tell whether the books moved
// between two observations — they gate metrics and assertions, never
// validation: a commit always re-validates against the live book.

// stripe is one lock shard of the reservation books.
type stripe struct {
	// order is the stripe's globally unique acquisition rank; multi-
	// stripe paths lock in ascending order.
	order uint64

	sync.Mutex

	// epoch counts availability-affecting mutations of any broker on
	// this stripe. Guarded by the mutex.
	epoch uint64
}

// stripeOrder mints globally unique acquisition ranks, so stripes of
// different StripeSets (or standalone brokers) still sort totally.
var stripeOrder atomic.Uint64

// localSeq mints per-process registration indexes for Local brokers:
// the deterministic tie-break when two brokers share a resource ID.
var localSeq atomic.Uint64

func newStripe() *stripe {
	return &stripe{order: stripeOrder.Add(1)}
}

// DefaultStripes is the stripe count of a pool that does not choose its
// own: enough shards that unrelated hot resources rarely collide, few
// enough that a batch round's lock sweep stays short.
const DefaultStripes = 32

// StripeSet is a fixed pool of stripes that brokers are hashed onto by
// resource ID. Safe for concurrent use after construction.
type StripeSet struct {
	stripes []*stripe
}

// NewStripeSet creates n stripes (minimum 1).
func NewStripeSet(n int) *StripeSet {
	if n < 1 {
		n = 1
	}
	s := &StripeSet{stripes: make([]*stripe, n)}
	for i := range s.stripes {
		s.stripes[i] = newStripe()
	}
	return s
}

// Size returns the number of stripes.
func (s *StripeSet) Size() int { return len(s.stripes) }

// forResource returns the stripe a resource ID hashes onto.
func (s *StripeSet) forResource(resource string) *stripe {
	h := fnv.New32a()
	h.Write([]byte(resource))
	return s.stripes[h.Sum32()%uint32(len(s.stripes))]
}

// sortStripes orders distinct stripes by acquisition rank, in place.
func sortStripes(ss []*stripe) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].order < ss[j-1].order; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// lockAll acquires the given stripes, which must be distinct and sorted
// by acquisition rank.
func lockAll(ss []*stripe) {
	for _, s := range ss {
		s.Lock()
	}
}

// unlockAll releases stripes locked by lockAll, in reverse order.
func unlockAll(ss []*stripe) {
	for i := len(ss) - 1; i >= 0; i-- {
		ss[i].Unlock()
	}
}

// Epoch returns the broker's availability epoch: the number of book
// mutations (reserves, releases, lease expiries, failure and capacity
// transitions) it has undergone. Two equal epochs bracket an unchanged
// book.
func (b *Local) Epoch() uint64 {
	return b.published().epoch
}

// StripeOrder exposes the broker's stripe acquisition rank for tests
// asserting the multi-lock order is total.
func (b *Local) StripeOrder() uint64 { return b.stripe.order }
