package broker

import (
	"errors"
	"sync"
	"testing"

	"qosres/internal/qos"
	"qosres/internal/topo"
)

func TestFailAndRecover(t *testing.T) {
	b, err := NewLocal("cpu@H1", 100)
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.Reserve(1, 40)
	if err != nil {
		t.Fatal(err)
	}

	b.Fail(2)
	if !b.Failed() {
		t.Fatal("broker not failed")
	}
	if got := b.Available(); got != 0 {
		t.Fatalf("failed broker available %g, want 0", got)
	}
	if _, err := b.Reserve(3, 1); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("reserve on failed broker: %v, want ErrInsufficient", err)
	}
	// The book of holds survives the failure; release works across it.
	if b.Reservations() != 1 {
		t.Fatalf("failure dropped holds: %d", b.Reservations())
	}
	if rep := b.Report(3); rep.Avail != 0 {
		t.Fatalf("failed report avail %g, want 0", rep.Avail)
	}
	// The change log records the outage window.
	if got := b.AvailableAt(2.5); got != 0 {
		t.Fatalf("AvailableAt during outage = %g, want 0", got)
	}

	b.Recover(4)
	if got := b.Available(); got != 60 {
		t.Fatalf("recovered available %g, want 60", got)
	}
	if got := b.AvailableAt(1.5); got != 60 {
		t.Fatalf("AvailableAt before outage = %g, want 60", got)
	}
	if err := b.Release(5, id); err != nil {
		t.Fatal(err)
	}
	if got := b.Available(); got != 100 {
		t.Fatalf("drained available %g, want 100", got)
	}
}

func TestCapacityShrinkNeverEvictsButBlocksAdmission(t *testing.T) {
	b, err := NewLocal("cpu@H1", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Reserve(1, 80); err != nil {
		t.Fatal(err)
	}
	if err := b.SetCapacity(2, 50); err != nil {
		t.Fatal(err)
	}
	// The hold survives the collapse; availability goes negative and
	// admission refuses everything until the overhang is released.
	if b.Reservations() != 1 {
		t.Fatalf("shrink evicted holds: %d", b.Reservations())
	}
	if got := b.Available(); got != -30 {
		t.Fatalf("collapsed available %g, want -30", got)
	}
	if _, err := b.Reserve(3, 1); !errors.Is(err, ErrInsufficient) {
		t.Fatalf("reserve on collapsed broker: %v, want ErrInsufficient", err)
	}
	if err := b.SetCapacity(4, -1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if err := b.SetCapacity(4, 100); err != nil {
		t.Fatal(err)
	}
	if got := b.Available(); got != 20 {
		t.Fatalf("restored available %g, want 20", got)
	}
}

func TestAtomicReserveRefusesFailedBroker(t *testing.T) {
	pool := NewPool(nil)
	a, err := pool.addLocal("cpu@A", 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.addLocal("cpu@B", 100); err != nil {
		t.Fatal(err)
	}
	a.Fail(1)
	_, err = pool.ReserveAllAtomic(2, qos.ResourceVector{"cpu@A": 10, "cpu@B": 10})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("atomic reserve across failed broker: %v, want ErrInsufficient", err)
	}
	// No residue on the healthy broker.
	if got, _ := pool.Get("cpu@B"); got.Available() != 100 {
		t.Fatalf("healthy broker touched: %g", got.Available())
	}
}

func TestLeaseExpiryReclaimsLocalHold(t *testing.T) {
	b, err := NewLocal("cpu@H1", 100)
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.Reserve(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetLease(id, 10); err != nil {
		t.Fatal(err)
	}
	if n := b.ExpireLeases(9); n != 0 {
		t.Fatalf("expired %d leases before expiry", n)
	}
	if n := b.ExpireLeases(10); n != 1 {
		t.Fatalf("expired %d leases at expiry, want 1", n)
	}
	if got := b.Available(); got != 100 {
		t.Fatalf("capacity not reclaimed: %g", got)
	}
	// The hold is gone: a late release (the crashed proxy coming back)
	// observes ErrUnknownReservation.
	if err := b.Release(11, id); !errors.Is(err, ErrUnknownReservation) {
		t.Fatalf("release after expiry: %v, want ErrUnknownReservation", err)
	}
	// Renewal after expiry reports the loss the same way.
	if err := b.SetLease(id, 20); !errors.Is(err, ErrUnknownReservation) {
		t.Fatalf("renew after expiry: %v, want ErrUnknownReservation", err)
	}
}

func TestLeaseRenewalDefersExpiry(t *testing.T) {
	b, err := NewLocal("cpu@H1", 100)
	if err != nil {
		t.Fatal(err)
	}
	id, err := b.Reserve(0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetLease(id, 10); err != nil {
		t.Fatal(err)
	}
	// Renew before the sweep: the old expiry no longer applies.
	if err := b.SetLease(id, 20); err != nil {
		t.Fatal(err)
	}
	if n := b.ExpireLeases(10); n != 0 {
		t.Fatalf("renewed lease reclaimed: %d", n)
	}
	// Clearing the lease makes the hold permanent again.
	if err := b.SetLease(id, 0); err != nil {
		t.Fatal(err)
	}
	if n := b.ExpireLeases(1e9); n != 0 {
		t.Fatalf("permanent hold reclaimed: %d", n)
	}
	if err := b.Release(30, id); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseRenewalRacingExpiry pins the renewal/expiry race contract:
// under concurrent renewals and sweeps, either the renewal wins (the
// hold survives past the old expiry) or the sweep wins (the renewal
// observes ErrUnknownReservation) — and in every interleaving the
// reserved accounting stays consistent: reclaimed exactly once, never
// negative, never double-counted.
func TestLeaseRenewalRacingExpiry(t *testing.T) {
	const rounds = 200
	for round := 0; round < rounds; round++ {
		b, err := NewLocal("cpu@H1", 100)
		if err != nil {
			t.Fatal(err)
		}
		id, err := b.Reserve(0, 30)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SetLease(id, 1); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		var renewErr error
		expired := 0
		go func() {
			defer wg.Done()
			renewErr = b.SetLease(id, 2) // renew past the sweep instant
		}()
		go func() {
			defer wg.Done()
			expired = b.ExpireLeases(1)
		}()
		wg.Wait()

		switch {
		case renewErr == nil && expired == 0:
			// Renewal won; the hold must still be live and releasable.
			if b.Reservations() != 1 || b.Available() != 70 {
				t.Fatalf("round %d: renewal won but hold inconsistent: %d holds, %g available",
					round, b.Reservations(), b.Available())
			}
			if err := b.Release(3, id); err != nil {
				t.Fatal(err)
			}
		case errors.Is(renewErr, ErrUnknownReservation) && expired == 1:
			// Sweep won; the capacity is reclaimed exactly once.
			if b.Reservations() != 0 || b.Available() != 100 {
				t.Fatalf("round %d: sweep won but broker inconsistent: %d holds, %g available",
					round, b.Reservations(), b.Available())
			}
		case renewErr == nil && expired == 1:
			// Renewal landed first, then the sweep ran at a now-stale
			// instant but the renewed expiry (2) is still > 1, so this
			// combination means the sweep reclaimed a renewed hold.
			t.Fatalf("round %d: sweep reclaimed a renewed lease", round)
		default:
			t.Fatalf("round %d: impossible outcome: renewErr=%v expired=%d", round, renewErr, expired)
		}
		if got := b.Available(); got != 100 {
			t.Fatalf("round %d: final availability %g, want 100", round, got)
		}
	}
}

func TestNetworkLeaseExpiryReleasesLinks(t *testing.T) {
	l1, _ := NewLocal("link:L1", 100)
	l2, _ := NewLocal("link:L2", 100)
	n, err := NewNetwork("net:A->B", []*Local{l1, l2})
	if err != nil {
		t.Fatal(err)
	}
	id, err := n.Reserve(0, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetLease(id, 5); err != nil {
		t.Fatal(err)
	}
	// Link holds carry no lease of their own: a link sweep reclaims
	// nothing.
	if got := l1.ExpireLeases(1e9); got != 0 {
		t.Fatalf("link sweep reclaimed %d network-owned holds", got)
	}
	if got := n.ExpireLeases(5); got != 1 {
		t.Fatalf("network sweep reclaimed %d, want 1", got)
	}
	if l1.Available() != 100 || l2.Available() != 100 {
		t.Fatalf("links not reclaimed: %g, %g", l1.Available(), l2.Available())
	}
	if err := n.Release(6, id); !errors.Is(err, ErrUnknownReservation) {
		t.Fatalf("release after network lease expiry: %v, want ErrUnknownReservation", err)
	}
}

func TestMultiReservationLeaseAndTolerantRelease(t *testing.T) {
	topology := topo.MustNew(
		[]topo.HostID{"A", "B"},
		[]topo.Link{{ID: "L1", A: "A", B: "B"}},
	)
	pool := NewPool(topology)
	if _, err := pool.AddLocal("cpu", "A", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.AddLink("L1", 100); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Network("A", "B"); err != nil {
		t.Fatal(err)
	}
	req := qos.ResourceVector{"cpu@A": 10, NetResourceID("A", "B"): 20}
	m, err := pool.ReserveAllAtomic(0, req)
	if err != nil {
		t.Fatal(err)
	}

	touches := m.Touches()
	want := map[string]bool{"cpu@A": true, "net:A->B": true, "link:L1": true}
	if len(touches) != len(want) {
		t.Fatalf("touches = %v, want keys of %v", touches, want)
	}
	for _, r := range touches {
		if !want[r] {
			t.Fatalf("unexpected touch %q in %v", r, touches)
		}
	}

	if err := m.SetLease(5); err != nil {
		t.Fatal(err)
	}
	if got := pool.ExpireLeases(5); got != 2 {
		t.Fatalf("pool sweep reclaimed %d leases, want 2 (local + network)", got)
	}
	// A late Release of the reclaimed reservation is benign: every part
	// is already gone, which the leased reservation tolerates.
	if err := m.Release(6); err != nil {
		t.Fatalf("release after expiry on leased reservation: %v", err)
	}
	for _, b := range pool.LocalBrokers() {
		if b.Reservations() != 0 || b.Available() != b.Capacity() {
			t.Fatalf("%s not whole after expiry: %d holds, %g available",
				b.Resource(), b.Reservations(), b.Available())
		}
	}
}
