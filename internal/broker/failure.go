package broker

import "fmt"

// This file is the failure-and-lease surface of the broker layer, used
// by the fault injector (internal/fault) and the session-repair loop
// (internal/proxy):
//
//   - A broker can fail and recover. A failed broker reports zero
//     availability and refuses new reservations, but keeps its book of
//     holds: the holds no longer deliver any QoS (the physical resource
//     is gone), and it is the repair layer's job to release them and
//     re-plan the affected sessions. Keeping the book means Release
//     stays well-defined across a failure, so teardown never has to
//     special-case a down resource.
//
//   - A broker's capacity can shrink and restore (a capacity collapse:
//     partial hardware loss, an operator drain, a competing tenant).
//     Shrinking never evicts holds — the reserved total may transiently
//     exceed the new capacity — but the availability turns negative, so
//     the validate-at-commit path admits nothing further until repair
//     releases the overhang. New commits therefore never over-commit
//     beyond the capacity in force at commit time.
//
//   - A hold can carry a lease: an expiry renewed by the owning
//     session's heartbeat. ExpireLeases reclaims holds whose expiry has
//     passed, so a crashed main QoSProxy can never strand capacity
//     forever. Renewal and expiry race benignly: whichever takes the
//     broker's lock first wins, and a renewal that loses observes
//     ErrUnknownReservation — the signal that the session lost its
//     reservation and must re-establish it.

// Leaser is implemented by brokers whose holds can carry a lease
// expiry. Both *Local and *Network implement it; MultiReservation uses
// it to lease (and renew) every part of a plan in one call.
type Leaser interface {
	// SetLease sets (or renews) the expiry of a live hold. A zero
	// expiry removes the lease, making the hold permanent again.
	SetLease(id ReservationID, expiry Time) error
}

// Fail marks the resource as down: availability reports zero and new
// reservations are refused until Recover. Existing holds are preserved.
// Failing an already-failed broker is a no-op.
func (b *Local) Fail(now Time) {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	if b.failed {
		return
	}
	b.failed = true
	b.logChangeLocked(now)
}

// Recover clears the failure, restoring the availability that the book
// of holds implies. Recovering a healthy broker is a no-op.
func (b *Local) Recover(now Time) {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	if !b.failed {
		return
	}
	b.failed = false
	b.logChangeLocked(now)
}

// Failed reports whether the resource is currently down.
func (b *Local) Failed() bool {
	return b.published().failed
}

// SetCapacity changes the total amount of the resource in force —
// shrinking models a capacity collapse, restoring a repair. Holds are
// never evicted: after a shrink below the reserved total the
// availability is negative and admission refuses everything until the
// repair layer releases the overhanging holds.
func (b *Local) SetCapacity(now Time, capacity float64) error {
	if capacity < 0 {
		return fmt.Errorf("broker: resource %s: negative capacity %g", b.resource, capacity)
	}
	b.stripe.Lock()
	defer b.stripe.Unlock()
	b.capacity = capacity
	b.logChangeLocked(now)
	return nil
}

// SetLease implements Leaser for a local hold.
func (b *Local) SetLease(id ReservationID, expiry Time) error {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	h, ok := b.holds[id]
	if !ok {
		return fmt.Errorf("broker: resource %s: reservation %d: %w", b.resource, id, ErrUnknownReservation)
	}
	h.expiry = expiry
	b.holds[id] = h
	return nil
}

// ExpireLeases releases every leased hold whose expiry is at or before
// now and returns the number reclaimed. Holds without a lease (expiry
// zero) are never touched — in particular the per-link holds owned by a
// Network reservation, whose lifecycle the network-level lease governs.
func (b *Local) ExpireLeases(now Time) int {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	n := 0
	for id, h := range b.holds {
		if h.expiry > 0 && h.expiry <= now {
			delete(b.holds, id)
			b.reserved -= h.amount
			n++
		}
	}
	if n > 0 {
		if b.reserved < 0 {
			b.reserved = 0
		}
		b.logChangeLocked(now)
	}
	return n
}
