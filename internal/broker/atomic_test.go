package broker

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"qosres/internal/qos"
)

// resolverOf builds a resolve function over a fixed broker set.
func resolverOf(brokers ...Broker) func(string) (Broker, bool) {
	byName := make(map[string]Broker, len(brokers))
	for _, b := range brokers {
		byName[b.Resource()] = b
	}
	return func(r string) (Broker, bool) {
		b, ok := byName[r]
		return b, ok
	}
}

func mustLocal(t *testing.T, resource string, capacity float64) *Local {
	t.Helper()
	b, err := NewLocal(resource, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustNetwork(t *testing.T, resource string, links []*Local) *Network {
	t.Helper()
	n, err := NewNetwork(resource, links)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestReserveAtomicSuccessAndRelease(t *testing.T) {
	cpu := mustLocal(t, "cpu@A", 100)
	l1 := mustLocal(t, "link:1", 100)
	l2 := mustLocal(t, "link:2", 100)
	net := mustNetwork(t, "net:A->B", []*Local{l1, l2})
	resolve := resolverOf(cpu, net)

	m, err := ReserveAtomic(1, resolve, qos.ResourceVector{"cpu@A": 30, "net:A->B": 40})
	if err != nil {
		t.Fatalf("ReserveAtomic: %v", err)
	}
	if got := cpu.Available(); got != 70 {
		t.Fatalf("cpu available = %g, want 70", got)
	}
	for _, l := range []*Local{l1, l2} {
		if got := l.Available(); got != 60 {
			t.Fatalf("%s available = %g, want 60", l.Resource(), got)
		}
	}
	if err := m.Release(2); err != nil {
		t.Fatalf("Release: %v", err)
	}
	for _, b := range []*Local{cpu, l1, l2} {
		if got := b.Available(); got != 100 {
			t.Fatalf("%s available after release = %g, want 100", b.Resource(), got)
		}
		if n := b.Reservations(); n != 0 {
			t.Fatalf("%s has %d residual holds after release", b.Resource(), n)
		}
	}
	if n := net.Reservations(); n != 0 {
		t.Fatalf("network broker has %d residual holds after release", n)
	}
}

func TestReserveAtomicAllOrNothingOnRefusal(t *testing.T) {
	// zz sorts after the others, so with sequential reserve-then-rollback
	// the cpu and link holds would exist transiently; validate-at-commit
	// must refuse before creating any of them.
	cpu := mustLocal(t, "cpu@A", 100)
	link := mustLocal(t, "link:1", 100)
	net := mustNetwork(t, "net:A->B", []*Local{link})
	tight := mustLocal(t, "zz@A", 10)
	resolve := resolverOf(cpu, net, tight)

	_, err := ReserveAtomic(1, resolve, qos.ResourceVector{
		"cpu@A": 30, "net:A->B": 40, "zz@A": 11,
	})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient", err)
	}
	for _, b := range []*Local{cpu, link, tight} {
		if got := b.Available(); got != b.Capacity() {
			t.Fatalf("%s available = %g after refusal, want %g", b.Resource(), got, b.Capacity())
		}
		if n := b.Reservations(); n != 0 {
			t.Fatalf("%s has %d residual holds after refusal", b.Resource(), n)
		}
	}
	if n := net.Reservations(); n != 0 {
		t.Fatalf("network broker has %d residual holds after refusal", n)
	}
}

func TestReserveAtomicAggregatesSharedLinkDemand(t *testing.T) {
	// Two end-to-end resources share link:1 (capacity 100). Each amount
	// fits the link alone, but their sum does not: a per-resource check
	// would admit the plan and over-commit the link.
	shared := mustLocal(t, "link:1", 100)
	tailX := mustLocal(t, "link:2", 100)
	tailY := mustLocal(t, "link:3", 100)
	netX := mustNetwork(t, "net:A->B", []*Local{shared, tailX})
	netY := mustNetwork(t, "net:A->C", []*Local{shared, tailY})
	resolve := resolverOf(netX, netY)

	_, err := ReserveAtomic(1, resolve, qos.ResourceVector{"net:A->B": 60, "net:A->C": 60})
	if !errors.Is(err, ErrInsufficient) {
		t.Fatalf("err = %v, want ErrInsufficient on shared-link aggregate", err)
	}
	for _, l := range []*Local{shared, tailX, tailY} {
		if n := l.Reservations(); n != 0 {
			t.Fatalf("%s has %d residual holds", l.Resource(), n)
		}
	}

	// The aggregate that does fit must commit on both routes.
	m, err := ReserveAtomic(2, resolve, qos.ResourceVector{"net:A->B": 60, "net:A->C": 40})
	if err != nil {
		t.Fatalf("ReserveAtomic: %v", err)
	}
	if got := shared.Available(); got != 0 {
		t.Fatalf("shared link available = %g, want 0", got)
	}
	if err := m.Release(3); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

func TestReserveAtomicInputErrors(t *testing.T) {
	cpu := mustLocal(t, "cpu@A", 100)
	resolve := resolverOf(cpu)

	if _, err := ReserveAtomic(1, resolve, qos.ResourceVector{"cpu@A": -1}); err == nil {
		t.Fatal("negative amount accepted")
	}
	if _, err := ReserveAtomic(1, resolve, qos.ResourceVector{"ghost": 5}); err == nil {
		t.Fatal("unknown resource accepted")
	}
	// Zero amounts are skipped, not reserved.
	m, err := ReserveAtomic(1, resolve, qos.ResourceVector{"cpu@A": 0})
	if err != nil {
		t.Fatalf("zero-amount reserve: %v", err)
	}
	if len(m.Resources()) != 0 {
		t.Fatalf("zero amount created holds: %v", m.Resources())
	}
	if cpu.Reservations() != 0 {
		t.Fatal("zero amount left a hold")
	}
}

type opaqueBroker struct{ Broker }

func (opaqueBroker) Resource() string { return "opaque" }

func TestReserveAtomicRejectsUnknownBrokerType(t *testing.T) {
	resolve := resolverOf(opaqueBroker{})
	_, err := ReserveAtomic(1, resolve, qos.ResourceVector{"opaque": 1})
	if err == nil {
		t.Fatal("opaque broker type accepted")
	}
}

func TestReserveAtomicConcurrentNoOvercommit(t *testing.T) {
	// 64 goroutines race for a pool that fits only a few of them. The
	// invariants: no broker ever over-commits, every failure leaves zero
	// residue, and the final reserved amounts equal successes × demand.
	cpu := mustLocal(t, "cpu@A", 100)
	link := mustLocal(t, "link:1", 100)
	net := mustNetwork(t, "net:A->B", []*Local{link})
	resolve := resolverOf(cpu, net)
	req := qos.ResourceVector{"cpu@A": 30, "net:A->B": 40}

	const goroutines = 64
	var wg sync.WaitGroup
	results := make(chan *MultiReservation, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := ReserveAtomic(1, resolve, req)
			if err != nil {
				if !errors.Is(err, ErrInsufficient) {
					panic(fmt.Sprintf("unexpected error: %v", err))
				}
				return
			}
			results <- m
		}()
	}
	wg.Wait()
	close(results)

	var wins []*MultiReservation
	for m := range results {
		wins = append(wins, m)
	}
	// cpu admits ⌊100/30⌋ = 3, link ⌊100/40⌋ = 2: exactly 2 sessions win.
	if len(wins) != 2 {
		t.Fatalf("%d concurrent reservations succeeded, want 2", len(wins))
	}
	if got := cpu.Available(); got != 100-2*30 {
		t.Fatalf("cpu available = %g, want %g", got, 100-2*30.0)
	}
	if got := link.Available(); got != 100-2*40 {
		t.Fatalf("link available = %g, want %g", got, 100-2*40.0)
	}
	if cpu.Reservations() != 2 || link.Reservations() != 2 || net.Reservations() != 2 {
		t.Fatalf("hold counts = cpu %d, link %d, net %d, want 2 each",
			cpu.Reservations(), link.Reservations(), net.Reservations())
	}
	for _, m := range wins {
		if err := m.Release(2); err != nil {
			t.Fatalf("Release: %v", err)
		}
	}
	if cpu.Available() != 100 || link.Available() != 100 {
		t.Fatalf("availability not restored: cpu %g, link %g", cpu.Available(), link.Available())
	}
}

func TestPoolReserveAllAtomic(t *testing.T) {
	p := testPool(t)
	netAB, err := p.Network("H1", "D2")
	if err != nil {
		t.Fatal(err)
	}
	req := qos.ResourceVector{"cpu@H1": 25, netAB.Resource(): 10}
	m, err := p.ReserveAllAtomic(1, req)
	if err != nil {
		t.Fatalf("ReserveAllAtomic: %v", err)
	}
	cpu, _ := p.Get("cpu@H1")
	if got := cpu.Available(); got != 75 {
		t.Fatalf("cpu@H1 available = %g, want 75", got)
	}
	if err := m.Release(2); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := cpu.Available(); got != 100 {
		t.Fatalf("cpu@H1 available after release = %g, want 100", got)
	}
}
