// Package broker implements the Resource Brokers of section 3 of the
// paper. A Resource Broker makes and enforces reservations for one
// resource, reports the resource's current availability, and — for the
// tradeoff policy of section 4.3.1 — reports an Availability Change Index
// α = r_avail / r_avg computed over a sliding window of past reports.
//
// Two kinds of broker are provided, mirroring the paper's two-level
// management of network resources:
//
//   - Local brokers manage a host-local resource (CPU, memory, disk I/O
//     bandwidth) or a single network link (the RSVP-enabled bandwidth
//     broker of a router).
//   - Network brokers manage an end-to-end network resource between two
//     hosts by composing the per-link bandwidth brokers along the route.
//     The reported availability is the minimum of the link availabilities,
//     and a reservation reserves the amount on every link (with rollback
//     when any link refuses).
//
// Brokers additionally record an availability change log so that
// observations can be replayed "as of" an earlier time, supporting the
// paper's study of inaccurate resource availability observations
// (section 5.2.4).
package broker

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Time is simulation time in the paper's abstract Time Units (TUs).
type Time float64

// ReservationID identifies a reservation held at a broker.
type ReservationID uint64

// ErrInsufficient is returned when a reservation asks for more than the
// resource's current availability.
var ErrInsufficient = errors.New("broker: insufficient availability")

// ErrUnknownReservation is returned when terminating a reservation the
// broker does not hold.
var ErrUnknownReservation = errors.New("broker: unknown reservation")

// Report is what a broker tells a querying QoSProxy: the current
// availability and the availability change index α of equation (5).
// α >= 1 means the availability trend is "up" or "unchanged"; α < 1 means
// the trend is "down". Epoch stamps the observation with the broker's
// book epoch (see stripe.go) so consumers can tell whether the book
// moved between two reports; for network brokers it is the sum of the
// route links' epochs.
type Report struct {
	Resource string
	Avail    float64
	Alpha    float64
	At       Time
	Epoch    uint64
}

// Broker is the interface of a Resource Broker (basic operations listed
// in section 3: report availability, make/enforce reservations, terminate
// reservations).
type Broker interface {
	// Resource returns the broker's resource ID, unique in its Pool.
	Resource() string
	// Capacity returns the total amount of the resource.
	Capacity() float64
	// Available returns the current unreserved amount.
	Available() float64
	// AvailableAt returns the availability as of an earlier instant, for
	// stale-observation studies. Times before the broker existed report
	// the full capacity.
	AvailableAt(asOf Time) float64
	// Report returns availability plus the change index α, and folds the
	// report into the α averaging window.
	Report(now Time) Report
	// Reserve atomically reserves amount units, failing with
	// ErrInsufficient when amount exceeds the current availability.
	Reserve(now Time, amount float64) (ReservationID, error)
	// Release terminates a reservation and returns its units.
	Release(now Time, id ReservationID) error
}

// DefaultAlphaWindow is the paper's report-averaging window T for the
// tradeoff policy: "each Resource Broker keeps an average r_avg of
// r_avail values reported during the past 3 time units".
const DefaultAlphaWindow Time = 3

// availSample is one point of the availability change log.
type availSample struct {
	at    Time
	avail float64
}

// hold is one live reservation at a Local broker. A zero expiry means
// the hold has no lease and lives until released; a positive expiry
// makes the hold a lease that ExpireLeases reclaims once the expiry has
// passed (see failure.go).
type hold struct {
	amount float64
	expiry Time
}

// reportSample is one past report, kept for the α window.
type reportSample struct {
	at    Time
	avail float64
}

// Local is a Resource Broker for a single local resource or network link.
// It is safe for concurrent use. Its book lives on a lock stripe
// (possibly shared with other brokers of its pool — see stripe.go);
// the book fields below the stripe pointer are guarded by the stripe
// mutex. Read-side queries never take the stripe: the externally
// observable state is republished as an immutable record behind pub at
// the end of every mutation (see publish.go), and the α report window
// lives under its own small mutex.
type Local struct {
	resource    string
	capacity    float64
	alphaWindow Time
	// seq is the broker's registration index: the deterministic
	// tie-break for orderings when two distinct brokers share a
	// resource ID. Immutable after construction.
	seq uint64

	stripe    *stripe
	reserved  float64
	holds     map[ReservationID]hold
	nextID    ReservationID
	changeLog []availSample
	// epoch counts this broker's availability-affecting mutations; the
	// stripe keeps its own aggregate counter.
	epoch uint64
	// failed marks the resource as down (a fault-injected or observed
	// outage): availability reports zero and new reservations are
	// refused, while the book of existing holds is preserved so the
	// repair layer can release them in an orderly way. See failure.go.
	failed bool

	// pub is the atomically published book state, replaced under the
	// stripe lock at the end of every mutation and at construction.
	// Hot-path reads load it instead of locking the stripe.
	pub atomic.Pointer[pubRecord]

	// alphaMu guards the α report window. It is deliberately separate
	// from the stripe: feeding the window is a read-side concern and
	// must not contend with commits. alphaSum is the running sum of
	// reports[i].avail, maintained so α is O(1) per query; it is kept
	// bit-identical to a left-to-right recompute by resumming in slice
	// order after every prune.
	alphaMu  sync.Mutex
	reports  []reportSample
	alphaSum float64
}

// NewLocal creates a broker for the named resource with the given total
// capacity and the default α window.
func NewLocal(resource string, capacity float64) (*Local, error) {
	return NewLocalWindow(resource, capacity, DefaultAlphaWindow)
}

// NewLocalWindow creates a broker with an explicit α averaging window.
// The broker gets a private lock stripe; pool-registered brokers share
// the pool's StripeSet instead (see newLocalOn).
func NewLocalWindow(resource string, capacity float64, window Time) (*Local, error) {
	return newLocalOn(newStripe(), resource, capacity, window)
}

// newLocalOn creates a broker whose book lives on the given stripe.
func newLocalOn(s *stripe, resource string, capacity float64, window Time) (*Local, error) {
	if resource == "" {
		return nil, fmt.Errorf("broker: empty resource name")
	}
	if capacity < 0 {
		return nil, fmt.Errorf("broker: resource %s has negative capacity %g", resource, capacity)
	}
	if window <= 0 {
		return nil, fmt.Errorf("broker: resource %s has non-positive alpha window %g", resource, float64(window))
	}
	b := &Local{
		resource:    resource,
		capacity:    capacity,
		alphaWindow: window,
		seq:         localSeq.Add(1),
		stripe:      s,
		holds:       make(map[ReservationID]hold),
		changeLog:   []availSample{{at: 0, avail: capacity}},
	}
	b.pub.Store(&pubRecord{avail: capacity, capacity: capacity})
	return b, nil
}

// Resource implements Broker.
func (b *Local) Resource() string { return b.resource }

// Capacity implements Broker. With fault injection the capacity can
// shrink and recover over time (see SetCapacity); Capacity reports the
// amount currently in force. Wait-free.
func (b *Local) Capacity() float64 {
	return b.published().capacity
}

// availLocked is the single source of truth for current availability: a
// failed resource offers nothing, a live one offers capacity minus the
// reserved total (which can be negative after a capacity collapse, until
// the repair layer releases the overhanging holds). Callers must hold
// the stripe lock.
func (b *Local) availLocked() float64 {
	if b.failed {
		return 0
	}
	return b.capacity - b.reserved
}

// Available implements Broker. Wait-free: it loads the published book
// state and never touches the stripe.
func (b *Local) Available() float64 {
	return b.published().avail
}

// AvailableAt implements Broker: the availability in force at time asOf,
// reconstructed from the change log. The hot path — asking "as of now",
// i.e. at or after the last mutation — is served wait-free from the
// published record, whose avail equals the change log's final entry
// (same-instant mutations coalesce, so once pub.at <= asOf the log has
// no later entry). Only genuinely historical queries walk the log under
// the stripe lock.
func (b *Local) AvailableAt(asOf Time) float64 {
	if p := b.published(); asOf >= p.at {
		return p.avail
	}
	b.stripe.Lock()
	defer b.stripe.Unlock()
	return b.availableAtLocked(asOf)
}

// availableAtLocked reconstructs the availability in force at asOf from
// the change log. Callers must hold the stripe lock.
func (b *Local) availableAtLocked(asOf Time) float64 {
	// Find the last change at or before asOf.
	i := sort.Search(len(b.changeLog), func(i int) bool { return b.changeLog[i].at > asOf })
	if i == 0 {
		return b.capacity
	}
	return b.changeLog[i-1].avail
}

// Report implements Broker. α is the ratio of the current availability to
// the average of the values reported during the past window (equation 5);
// when no past reports fall in the window, or the average is zero, α is
// 1.0 ("unchanged"). Availability and epoch come from one atomic load of
// the published record — internally consistent, no stripe lock; only the
// broker-private α window mutex is taken.
func (b *Local) Report(now Time) Report {
	p := b.published()
	b.alphaMu.Lock()
	alpha := b.alphaFeedLocked(now, p.avail)
	b.alphaMu.Unlock()
	return Report{Resource: b.resource, Avail: p.avail, Alpha: alpha, At: now, Epoch: p.epoch}
}

// alphaFeedLocked computes α against the reports within (now-window, now]
// and then appends the new sample to the window. The running sum is
// resynced by an in-order resum after every prune, so the α value is
// bit-identical to recomputing the window sum from scratch on each call.
// Callers must hold alphaMu.
func (b *Local) alphaFeedLocked(now Time, avail float64) float64 {
	// Prune reports that fell out of every plausible window. Keep the log
	// bounded even under heavy query load.
	cutoff := now - b.alphaWindow
	first := sort.Search(len(b.reports), func(i int) bool { return b.reports[i].at > cutoff })
	if first > 0 {
		b.reports = append(b.reports[:0], b.reports[first:]...)
		var sum float64
		for _, r := range b.reports {
			sum += r.avail
		}
		b.alphaSum = sum
	}
	alpha := 1.0
	if len(b.reports) > 0 {
		if avg := b.alphaSum / float64(len(b.reports)); avg > 0 {
			alpha = avail / avg
		}
	}
	b.reports = append(b.reports, reportSample{at: now, avail: avail})
	b.alphaSum += avail
	return alpha
}

// Reserve implements Broker.
func (b *Local) Reserve(now Time, amount float64) (ReservationID, error) {
	if amount < 0 {
		return 0, fmt.Errorf("broker: resource %s: negative reservation %g", b.resource, amount)
	}
	b.stripe.Lock()
	defer b.stripe.Unlock()
	if !b.fitsLocked(amount) {
		return 0, fmt.Errorf("broker: resource %s: need %g, have %g: %w", b.resource, amount, b.availLocked(), ErrInsufficient)
	}
	return b.reserveLocked(now, amount), nil
}

// fitsLocked reports whether a new hold of amount fits the book: the
// post-commit reserved total may not exceed the capacity in force.
// The only forgiveness is proportional float64 rounding noise of the
// sums involved (capNoise) — an absolute epsilon of net new demand is
// NOT forgiven, which the previous check (amount <= avail + 1e-9) did:
// at exactly-full capacity it admitted an extra 1e-9 per admission, an
// overcommit that admit/release churn could renew indefinitely.
// Callers must hold the stripe lock.
func (b *Local) fitsLocked(amount float64) bool {
	if b.failed && amount > 0 {
		return false
	}
	post := b.reserved + amount
	if post <= b.capacity {
		return true
	}
	return post-b.capacity <= capNoise(b.capacity)
}

// capNoise is the rounding forgiveness for a book of the given scale:
// proportional to capacity (a few thousand ULPs), so genuine summation
// noise of requirements that add up to exactly the capacity is
// forgiven, while eps-scale (1e-9) net new demand at the capacities
// this system runs at (10²–10⁶) is refused.
func capNoise(capacity float64) float64 {
	if capacity < 0 {
		capacity = -capacity
	}
	n := capacity * 1e-12
	if n < 1e-15 {
		n = 1e-15
	}
	return n
}

// reserveLocked creates a hold without checking availability. Callers
// must hold the stripe lock and have validated that amount fits; the
// atomic multi-resource commit path validates every broker of a plan
// before committing any of them.
func (b *Local) reserveLocked(now Time, amount float64) ReservationID {
	b.nextID++
	id := b.nextID
	b.holds[id] = hold{amount: amount}
	b.reserved += amount
	b.logChangeLocked(now)
	return id
}

// Release implements Broker.
func (b *Local) Release(now Time, id ReservationID) error {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	h, ok := b.holds[id]
	if !ok {
		return fmt.Errorf("broker: resource %s: reservation %d: %w", b.resource, id, ErrUnknownReservation)
	}
	delete(b.holds, id)
	b.reserved -= h.amount
	if b.reserved < 0 {
		b.reserved = 0
	}
	b.logChangeLocked(now)
	return nil
}

// Reservations returns the number of live reservations, for tests and
// leak checks.
func (b *Local) Reservations() int {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	return len(b.holds)
}

// Reserved returns the total amount currently held. Unlike Available it
// is meaningful even while the resource is failed or its capacity has
// collapsed below the held total.
func (b *Local) Reserved() float64 {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	return b.reserved
}

// HoldAmounts returns the amounts of every live hold, sorted ascending.
// Two books with equal multisets of hold amounts are observably
// equivalent regardless of the order the holds were admitted in —
// the equivalence tests of the group-commit path compare exactly this.
func (b *Local) HoldAmounts() []float64 {
	b.stripe.Lock()
	out := make([]float64, 0, len(b.holds))
	for _, h := range b.holds {
		out = append(out, h.amount)
	}
	b.stripe.Unlock()
	sort.Float64s(out)
	return out
}

func (b *Local) logChangeLocked(now Time) {
	b.epoch++
	b.stripe.epoch++
	avail := b.availLocked()
	if n := len(b.changeLog); n > 0 && b.changeLog[n-1].at == now {
		b.changeLog[n-1].avail = avail
	} else {
		b.changeLog = append(b.changeLog, availSample{at: now, avail: avail})
	}
	b.publishLocked(now)
}

// TrimLog drops change-log entries strictly older than keepAfter, keeping
// the latest entry at or before it as the new baseline. Long simulations
// call this periodically so memory stays proportional to the staleness
// window rather than to the full run.
func (b *Local) TrimLog(keepAfter Time) {
	b.stripe.Lock()
	defer b.stripe.Unlock()
	i := sort.Search(len(b.changeLog), func(i int) bool { return b.changeLog[i].at > keepAfter })
	if i == 0 {
		return
	}
	// Keep entry i-1 as the baseline for queries at keepAfter.
	b.changeLog = append(b.changeLog[:0], b.changeLog[i-1:]...)
}
