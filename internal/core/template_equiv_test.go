package core

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/svc"
)

// This file proves the compiled-template fast lane is indistinguishable
// from the reference builder: for hundreds of seeded random services,
// bindings, and snapshots — chains, fan-in DAGs, and infeasible
// availability included — Compile+Instantiate must produce a graph
// structurally identical to qrg.Build (same node/edge IDs, adjacency,
// sinks) and every planner must produce byte-for-byte identical plans
// (path, Ψ, α, rank, tie-breaks) on both.

// zeroSnapshot drains a snapshot's availability below any generated
// requirement (generators draw needs >= 1), pruning every translation
// edge so the graph keeps only its source node.
func zeroSnapshot(snap *broker.Snapshot) *broker.Snapshot {
	avail := make(qos.ResourceVector, len(snap.Avail))
	for r := range snap.Avail {
		avail[r] = 0.5
	}
	return &broker.Snapshot{At: snap.At, Avail: avail, Alpha: snap.Alpha}
}

// assertGraphsIdentical compares every observable field of the two
// graphs.
func assertGraphsIdentical(t *testing.T, label string, want, got *qrg.Graph) {
	t.Helper()
	if !reflect.DeepEqual(want.Nodes, got.Nodes) {
		t.Fatalf("%s: nodes differ\nbuild:       %+v\ninstantiate: %+v", label, want.Nodes, got.Nodes)
	}
	if !reflect.DeepEqual(want.Edges, got.Edges) {
		t.Fatalf("%s: edges differ\nbuild:       %+v\ninstantiate: %+v", label, want.Edges, got.Edges)
	}
	if !reflect.DeepEqual(want.OutEdges, got.OutEdges) {
		t.Fatalf("%s: out-adjacency differs\nbuild:       %v\ninstantiate: %v", label, want.OutEdges, got.OutEdges)
	}
	if !reflect.DeepEqual(want.InEdges, got.InEdges) {
		t.Fatalf("%s: in-adjacency differs\nbuild:       %v\ninstantiate: %v", label, want.InEdges, got.InEdges)
	}
	if want.Source != got.Source {
		t.Fatalf("%s: source %d vs %d", label, want.Source, got.Source)
	}
	if !reflect.DeepEqual(want.Sinks, got.Sinks) {
		t.Fatalf("%s: sinks differ: %v vs %v", label, want.Sinks, got.Sinks)
	}
}

// assertPlansIdentical requires both planner outcomes to agree exactly:
// same error class, or deeply equal plans with identical rendering.
func assertPlansIdentical(t *testing.T, label string, pWant *Plan, errWant error, pGot *Plan, errGot error) {
	t.Helper()
	if (errWant == nil) != (errGot == nil) {
		t.Fatalf("%s: error mismatch: build %v, instantiate %v", label, errWant, errGot)
	}
	if errWant != nil {
		if errors.Is(errWant, ErrInfeasible) != errors.Is(errGot, ErrInfeasible) {
			t.Fatalf("%s: error class mismatch: build %v, instantiate %v", label, errWant, errGot)
		}
		return
	}
	if !reflect.DeepEqual(pWant, pGot) {
		t.Fatalf("%s: plans differ\nbuild:       %+v\ninstantiate: %+v", label, pWant, pGot)
	}
	if sw, sg := fmt.Sprintf("%+v", pWant), fmt.Sprintf("%+v", pGot); sw != sg {
		t.Fatalf("%s: plan renderings differ\nbuild:       %s\ninstantiate: %s", label, sw, sg)
	}
}

// equivPlanners returns fresh planner pairs for one comparison; the
// random planner needs two same-seeded instances so its draws stay in
// lockstep across the two graphs.
func equivPlanners(seed int64) []struct {
	name       string
	forBuild   Planner
	forInst    Planner
	chainsOnly bool
} {
	return []struct {
		name       string
		forBuild   Planner
		forInst    Planner
		chainsOnly bool
	}{
		{name: "basic", forBuild: Basic{}, forInst: Basic{}},
		{name: "basic-no-tiebreak", forBuild: Basic{NoTieBreak: true}, forInst: Basic{NoTieBreak: true}},
		{name: "tradeoff", forBuild: Tradeoff{}, forInst: Tradeoff{}},
		{name: "twopass", forBuild: TwoPass{}, forInst: TwoPass{}},
		{name: "random", forBuild: NewRandom(seed), forInst: NewRandom(seed), chainsOnly: true},
	}
}

// checkEquivalence runs one scenario end to end: build both graphs,
// compare them, compare all planner outputs, then instantiate again
// after recycling to prove pooled buffers do not leak state.
func checkEquivalence(t *testing.T, label string, service *svc.Service, binding svc.Binding, snap *broker.Snapshot, seed int64) {
	t.Helper()
	gWant, errW := qrg.Build(service, binding, snap)
	tpl, errC := qrg.Compile(service, binding)
	if errC != nil {
		t.Fatalf("%s: compile failed: %v", label, errC)
	}
	gGot, errI := tpl.Instantiate(snap)
	if (errW == nil) != (errI == nil) {
		t.Fatalf("%s: build err %v, instantiate err %v", label, errW, errI)
	}
	if errW != nil {
		return
	}
	assertGraphsIdentical(t, label, gWant, gGot)

	isChain := service.IsChain()
	for _, pp := range equivPlanners(seed) {
		if pp.chainsOnly && !isChain {
			continue
		}
		pW, eW := pp.forBuild.Plan(gWant)
		pG, eG := pp.forInst.Plan(gGot)
		assertPlansIdentical(t, label+"/"+pp.name, pW, eW, pG, eG)
	}

	// Round 2 on recycled buffers: identical again.
	tpl.Recycle(gGot)
	gGot2, err := tpl.Instantiate(snap)
	if err != nil {
		t.Fatalf("%s: re-instantiate failed: %v", label, err)
	}
	assertGraphsIdentical(t, label+"/recycled", gWant, gGot2)
	p1, e1 := (Basic{}).Plan(gWant)
	p2, e2 := (Basic{}).Plan(gGot2)
	assertPlansIdentical(t, label+"/recycled/basic", p1, e1, p2, e2)
	tpl.Recycle(gGot2)
}

// TestTemplateEquivalenceRandomized is the acceptance test of the fast
// lane: >= 200 seeded scenarios (random chains, fan-in DAGs, and their
// infeasible-snapshot variants) with plan-for-plan identity between
// Compile+Instantiate and qrg.Build under basic (with and without
// tie-break), tradeoff, random (same seed), and two-pass planners.
func TestTemplateEquivalenceRandomized(t *testing.T) {
	scenarios := 0

	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 120; trial++ {
		k := 2 + rng.Intn(5)
		service, binding, snap := randChainService(rng, k)
		checkEquivalence(t, fmt.Sprintf("chain/%d", trial), service, binding, snap, int64(trial))
		scenarios++
		if trial%4 == 0 {
			// Starved availability: everything prunes, both paths must
			// degrade identically (usually to ErrInfeasible).
			checkEquivalence(t, fmt.Sprintf("chain/%d/infeasible", trial), service, binding, zeroSnapshot(snap), int64(trial))
			scenarios++
		}
	}

	rng = rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		service, binding, snap := randDagService(rng)
		checkEquivalence(t, fmt.Sprintf("dag/%d", trial), service, binding, snap, int64(trial))
		scenarios++
		if trial%4 == 0 {
			checkEquivalence(t, fmt.Sprintf("dag/%d/infeasible", trial), service, binding, zeroSnapshot(snap), int64(trial))
			scenarios++
		}
	}

	if scenarios < 200 {
		t.Fatalf("only %d scenarios exercised, want >= 200", scenarios)
	}
}

// TestTemplateEquivalenceAcrossSnapshots drives one compiled template
// through a sweep of availability levels — the production usage pattern
// (compile once, instantiate per snapshot) — checking graph identity at
// every step as feasibility pruning grows and shrinks the graph.
func TestTemplateEquivalenceAcrossSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	service, binding, snap := randChainService(rng, 4)
	tpl, err := qrg.Compile(service, binding)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	for step := 0; step < 30; step++ {
		avail := make(qos.ResourceVector, len(snap.Avail))
		for r := range snap.Avail {
			avail[r] = float64(step) * 4
		}
		s := &broker.Snapshot{Avail: avail, Alpha: snap.Alpha}
		gWant, errW := qrg.Build(service, binding, s)
		gGot, errI := tpl.Instantiate(s)
		if (errW == nil) != (errI == nil) {
			t.Fatalf("step %d: build err %v, instantiate err %v", step, errW, errI)
		}
		if errW != nil {
			continue
		}
		assertGraphsIdentical(t, fmt.Sprintf("step/%d", step), gWant, gGot)
		pW, eW := (Basic{}).Plan(gWant)
		pG, eG := (Basic{}).Plan(gGot)
		assertPlansIdentical(t, fmt.Sprintf("step/%d", step), pW, eW, pG, eG)
		tpl.Recycle(gGot)
	}
}
