package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/workload"
)

// This file cross-validates the planners on randomized service models:
// the max-plus Dijkstra against the exhaustive enumerator on random
// chains, and the two-pass heuristic against the enumerator on random
// fan-out/fan-in DAGs. The generators build structurally valid services
// with random level counts, random supported (Qin, Qout) pairs, and
// random requirements, then randomize availability so some edges are
// infeasible.

// randLevelSet builds n levels with distinct single-parameter vectors.
func randLevelSet(prefix string, base, n int) []svc.Level {
	out := make([]svc.Level, n)
	for i := range out {
		out[i] = svc.Level{
			Name:   fmt.Sprintf("%s%d", prefix, i),
			Vector: qos.MustVector(qos.P("q", float64(base+i))),
		}
	}
	return out
}

// randChainService builds a random chain of k components. Component i
// binds its single resource to "r<i>".
func randChainService(rng *rand.Rand, k int) (*svc.Service, svc.Binding, *broker.Snapshot) {
	var comps []*svc.Component
	var edges []svc.Edge
	binding := svc.Binding{}
	avail := qos.ResourceVector{}
	alpha := map[string]float64{}

	prevOut := []svc.Level{{Name: "SRC", Vector: qos.MustVector(qos.P("q", -1))}}
	for i := 0; i < k; i++ {
		id := svc.ComponentID(fmt.Sprintf("c%d", i))
		nOut := 2 + rng.Intn(3)
		in := make([]svc.Level, len(prevOut))
		for j, lv := range prevOut {
			in[j] = svc.Level{Name: fmt.Sprintf("in%d_%d", i, j), Vector: lv.Vector}
		}
		if i == 0 {
			in = in[:1]
		}
		out := randLevelSet(fmt.Sprintf("out%d_", i), i*100, nOut)
		table := svc.TranslationTable{}
		for _, lin := range in {
			row := map[string]qos.ResourceVector{}
			for _, lout := range out {
				if rng.Float64() < 0.75 { // some pairs unsupported
					row[lout.Name] = qos.ResourceVector{"r": 1 + rng.Float64()*99}
				}
			}
			if len(row) > 0 {
				table[lin.Name] = row
			}
		}
		// Guarantee at least one supported pair so validation passes
		// structurally; feasibility still depends on availability.
		if len(table) == 0 {
			table[in[0].Name] = map[string]qos.ResourceVector{
				out[0].Name: {"r": 1 + rng.Float64()*99},
			}
		}
		comps = append(comps, &svc.Component{
			ID: id, In: in, Out: out,
			Translate: table.Func(),
			Resources: []string{"r"},
		})
		if i > 0 {
			edges = append(edges, svc.Edge{From: svc.ComponentID(fmt.Sprintf("c%d", i-1)), To: id})
		}
		res := fmt.Sprintf("r%d", i)
		binding[id] = map[string]string{"r": res}
		avail[res] = 20 + rng.Float64()*80 // some requirements infeasible
		alpha[res] = 0.5 + rng.Float64()
		prevOut = out
	}
	ranking := make([]string, len(prevOut))
	for i, lv := range prevOut {
		ranking[i] = lv.Name
	}
	// Random preference order over the sink levels.
	rng.Shuffle(len(ranking), func(i, j int) { ranking[i], ranking[j] = ranking[j], ranking[i] })

	service, err := svc.NewService("rand-chain", comps, edges, ranking)
	if err != nil {
		panic(err)
	}
	return service, binding, &broker.Snapshot{Avail: avail, Alpha: alpha}
}

func TestRandomizedBasicMatchesExhaustiveOnChains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	agree, infeasible := 0, 0
	for trial := 0; trial < 1500; trial++ {
		service, binding, snap := randChainService(rng, 2+rng.Intn(3))
		g, err := qrg.Build(service, binding, snap)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pb, errB := (Basic{}).Plan(g)
		pe, errE := (Exhaustive{}).Plan(g)
		if (errB == nil) != (errE == nil) {
			t.Fatalf("trial %d: basic err %v, exhaustive err %v", trial, errB, errE)
		}
		if errB != nil {
			if !errors.Is(errB, ErrInfeasible) {
				t.Fatalf("trial %d: %v", trial, errB)
			}
			infeasible++
			continue
		}
		if pb.Rank != pe.Rank {
			t.Fatalf("trial %d: basic rank %d != exhaustive rank %d", trial, pb.Rank, pe.Rank)
		}
		if math.Abs(pb.Psi-pe.Psi) > 1e-9 {
			t.Fatalf("trial %d: basic psi %v != exhaustive psi %v (sink %s)",
				trial, pb.Psi, pe.Psi, pb.EndToEnd.Name)
		}
		agree++
	}
	if agree < 100 {
		t.Fatalf("only %d feasible trials (%d infeasible): generator too harsh", agree, infeasible)
	}
}

func TestRandomizedPlanInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		service, binding, snap := randChainService(rng, 3)
		g, err := qrg.Build(service, binding, snap)
		if err != nil {
			t.Fatal(err)
		}
		p, err := (Basic{}).Plan(g)
		if err != nil {
			continue
		}
		// One choice per component, in chain order.
		if len(p.Choices) != 3 {
			t.Fatalf("trial %d: %d choices", trial, len(p.Choices))
		}
		// Every choice individually satisfiable and psi consistent.
		maxPsi := 0.0
		for _, c := range p.Choices {
			for r, amt := range c.Req {
				if amt > snap.Avail[r]+1e-9 {
					t.Fatalf("trial %d: choice %s requires %v of %s, avail %v",
						trial, c.Comp, amt, r, snap.Avail[r])
				}
			}
			if c.Psi > maxPsi {
				maxPsi = c.Psi
			}
		}
		if math.Abs(p.Psi-maxPsi) > 1e-12 {
			t.Fatalf("trial %d: plan psi %v != max choice psi %v", trial, p.Psi, maxPsi)
		}
		// Adjacent choices agree on the equivalence (vector equality).
		for i := 1; i < len(p.Choices); i++ {
			if !p.Choices[i-1].Out.Vector.Equal(p.Choices[i].In.Vector) {
				t.Fatalf("trial %d: choice %d output %v != choice %d input %v",
					trial, i-1, p.Choices[i-1].Out.Vector, i, p.Choices[i].In.Vector)
			}
		}
	}
}

func TestRandomizedTradeoffNeverExceedsBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	downgrades := 0
	for trial := 0; trial < 300; trial++ {
		service, binding, snap := randChainService(rng, 3)
		g, err := qrg.Build(service, binding, snap)
		if err != nil {
			t.Fatal(err)
		}
		pb, errB := (Basic{}).Plan(g)
		pt, errT := (Tradeoff{}).Plan(g)
		if (errB == nil) != (errT == nil) {
			t.Fatalf("trial %d: feasibility disagreement", trial)
		}
		if errB != nil {
			continue
		}
		if pt.Rank > pb.Rank {
			t.Fatalf("trial %d: tradeoff rank %d above basic %d", trial, pt.Rank, pb.Rank)
		}
		if pt.Psi > pb.Psi+1e-12 {
			t.Fatalf("trial %d: tradeoff psi %v above basic %v", trial, pt.Psi, pb.Psi)
		}
		if pt.Rank < pb.Rank {
			downgrades++
		}
	}
	if downgrades == 0 {
		t.Fatal("alpha range includes downtrends; expected at least one downgrade")
	}
}

func TestRandomizedRandomPlannerRankMatchesBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := NewRandom(5)
	for trial := 0; trial < 200; trial++ {
		service, binding, snap := randChainService(rng, 3)
		g, err := qrg.Build(service, binding, snap)
		if err != nil {
			t.Fatal(err)
		}
		pb, errB := (Basic{}).Plan(g)
		pr, errR := r.Plan(g)
		if (errB == nil) != (errR == nil) {
			t.Fatalf("trial %d: feasibility disagreement", trial)
		}
		if errB != nil {
			continue
		}
		if pr.Rank != pb.Rank {
			t.Fatalf("trial %d: random rank %d != basic rank %d", trial, pr.Rank, pb.Rank)
		}
		if pr.Psi < pb.Psi-1e-12 {
			t.Fatalf("trial %d: random psi %v below basic's optimum %v", trial, pr.Psi, pb.Psi)
		}
	}
}

// randDagService randomizes the figure-6 shape: c1 -> c2 -> {c3, c4} ->
// c5 with random requirements and some unsupported pairs.
func randDagService(rng *rand.Rand) (*svc.Service, svc.Binding, *broker.Snapshot) {
	lv := func(name string, q float64) svc.Level {
		return svc.Level{Name: name, Vector: qos.MustVector(qos.P("q", q))}
	}
	req := func() qos.ResourceVector { return qos.ResourceVector{"r": 1 + rng.Float64()*99} }
	maybe := func(row map[string]qos.ResourceVector, name string, p float64) {
		if rng.Float64() < p {
			row[name] = req()
		}
	}

	qa := lv("Qa", 0)
	qb, qc := lv("Qb", 1), lv("Qc", 2)
	qd, qe := lv("Qd", 1), lv("Qe", 2)
	qh, qi := lv("Qh", 10), lv("Qi", 11)
	qj, qk := lv("Qj", 10), lv("Qk", 11)
	qn, qo := lv("Qn", 20), lv("Qo", 21)
	ql, qm := lv("Ql", 10), lv("Qm", 11)
	qp, qq := lv("Qp", 30), lv("Qq", 31)
	qv, qw := lv("Qv", 90), lv("Qw", 91)

	concat := func(name string, a, b svc.Level) svc.Level {
		return svc.Level{Name: name, Vector: qos.ConcatAll(
			[]string{"c3", "c4"}, []qos.Vector{a.Vector, b.Vector})}
	}
	fanIn := []svc.Level{
		concat("F1", qn, qp), concat("F2", qn, qq),
		concat("F3", qo, qp), concat("F4", qo, qq),
	}

	mkTable := func(ins []svc.Level, outs []svc.Level, p float64) svc.TranslationTable {
		tb := svc.TranslationTable{}
		for _, in := range ins {
			row := map[string]qos.ResourceVector{}
			for _, out := range outs {
				maybe(row, out.Name, p)
			}
			if len(row) > 0 {
				tb[in.Name] = row
			}
		}
		if len(tb) == 0 {
			tb[ins[0].Name] = map[string]qos.ResourceVector{outs[0].Name: req()}
		}
		return tb
	}

	comps := []*svc.Component{
		{ID: "c1", In: []svc.Level{qa}, Out: []svc.Level{qb, qc},
			Translate: mkTable([]svc.Level{qa}, []svc.Level{qb, qc}, 0.9).Func(), Resources: []string{"r"}},
		{ID: "c2", In: []svc.Level{qd, qe}, Out: []svc.Level{qh, qi},
			Translate: mkTable([]svc.Level{qd, qe}, []svc.Level{qh, qi}, 0.8).Func(), Resources: []string{"r"}},
		{ID: "c3", In: []svc.Level{qj, qk}, Out: []svc.Level{qn, qo},
			Translate: mkTable([]svc.Level{qj, qk}, []svc.Level{qn, qo}, 0.8).Func(), Resources: []string{"r"}},
		{ID: "c4", In: []svc.Level{ql, qm}, Out: []svc.Level{qp, qq},
			Translate: mkTable([]svc.Level{ql, qm}, []svc.Level{qp, qq}, 0.8).Func(), Resources: []string{"r"}},
		{ID: "c5", In: fanIn, Out: []svc.Level{qv, qw},
			Translate: mkTable(fanIn, []svc.Level{qv, qw}, 0.7).Func(), Resources: []string{"r"}},
	}
	service, err := svc.NewService("rand-dag", comps, []svc.Edge{
		{From: "c1", To: "c2"},
		{From: "c2", To: "c3"},
		{From: "c2", To: "c4"},
		{From: "c3", To: "c5"},
		{From: "c4", To: "c5"},
	}, []string{"Qv", "Qw"})
	if err != nil {
		panic(err)
	}
	binding := svc.Binding{}
	avail := qos.ResourceVector{}
	alpha := map[string]float64{}
	for _, c := range comps {
		res := "r@" + string(c.ID)
		binding[c.ID] = map[string]string{"r": res}
		avail[res] = 30 + rng.Float64()*70
		alpha[res] = 1
	}
	return service, binding, &broker.Snapshot{Avail: avail, Alpha: alpha}
}

func TestRandomizedTwoPassAgainstExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var feasible, heuristicGaps, heuristicFailures int
	for trial := 0; trial < 1500; trial++ {
		service, binding, snap := randDagService(rng)
		g, err := qrg.Build(service, binding, snap)
		if err != nil {
			t.Fatal(err)
		}
		ph, errH := (TwoPass{}).Plan(g)
		pe, errE := (Exhaustive{}).Plan(g)
		if errH == nil && errE != nil {
			// The heuristic can never succeed where no embedded graph
			// exists.
			t.Fatalf("trial %d: twopass found a plan the enumerator says cannot exist", trial)
		}
		if errH != nil {
			if !errors.Is(errH, ErrInfeasible) {
				t.Fatalf("trial %d: %v", trial, errH)
			}
			if errE == nil {
				// Heuristic limitation (1): a pass-I-reachable sink with
				// no feasible embedded graph found in pass II. Allowed,
				// but must stay rare.
				heuristicFailures++
			}
			continue
		}
		feasible++
		// A two-pass success means an embedded graph at that rank
		// exists, and pass-I reachability bounds the enumerator's rank
		// from above: the ranks must agree.
		if pe.Rank != ph.Rank {
			t.Fatalf("trial %d: twopass rank %d, exhaustive rank %d", trial, ph.Rank, pe.Rank)
		}
		if pe.Psi > ph.Psi+1e-9 {
			t.Fatalf("trial %d: exhaustive psi %v worse than heuristic %v", trial, pe.Psi, ph.Psi)
		}
		// Heuristic limitation (2): the local resolution may miss the
		// global optimum.
		if ph.Psi > pe.Psi+1e-9 {
			heuristicGaps++
		}
		// The plan must be a consistent embedded graph.
		verifyEmbedded(t, trial, g, ph)
	}
	if feasible < 100 {
		t.Fatalf("only %d feasible trials", feasible)
	}
	if heuristicFailures > feasible/2 {
		t.Fatalf("heuristic failed on %d of %d solvable instances", heuristicFailures, feasible)
	}
	t.Logf("feasible=%d, heuristic psi gaps=%d, heuristic-only failures=%d",
		feasible, heuristicGaps, heuristicFailures)
}

// verifyEmbedded checks the embedded-graph consistency conditions of
// section 4.3.2 on a plan.
func verifyEmbedded(t *testing.T, trial int, g *qrg.Graph, p *Plan) {
	t.Helper()
	outOf := map[svc.ComponentID]svc.Level{}
	inOf := map[svc.ComponentID]svc.Level{}
	for _, c := range p.Choices {
		if _, dup := outOf[c.Comp]; dup {
			t.Fatalf("trial %d: component %s selected twice", trial, c.Comp)
		}
		outOf[c.Comp] = c.Out
		inOf[c.Comp] = c.In
	}
	if len(outOf) != len(g.Service.Components) {
		t.Fatalf("trial %d: plan covers %d of %d components", trial, len(outOf), len(g.Service.Components))
	}
	for _, cid := range g.Service.ComponentIDs() {
		preds := g.Service.Preds(cid)
		switch len(preds) {
		case 0:
		case 1:
			if !outOf[preds[0]].Vector.Equal(inOf[cid].Vector) {
				t.Fatalf("trial %d: %s input != %s output", trial, cid, preds[0])
			}
		default:
			// Fan-in: the selected input must be the concatenation of
			// the selected upstream outputs.
			labels := make([]string, 0, len(preds))
			vectors := make([]qos.Vector, 0, len(preds))
			for _, p := range []svc.ComponentID{"c3", "c4"} {
				labels = append(labels, string(p))
				vectors = append(vectors, outOf[p].Vector)
			}
			want := qos.ConcatAll(labels, vectors)
			if !inOf[cid].Vector.Equal(want) {
				t.Fatalf("trial %d: fan-in %s input %v != concat %v", trial, cid, inOf[cid].Vector, want)
			}
		}
	}
}

func TestSyntheticChainBasicMatchesExhaustive(t *testing.T) {
	// A dense Q=12 chain: ~12^3 embedded paths; the planners must agree
	// exactly.
	service, binding, snap := workload.SyntheticChain(3, 12)
	g, err := qrg.Build(service, binding, snap)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := (Exhaustive{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if pb.Rank != pe.Rank || math.Abs(pb.Psi-pe.Psi) > 1e-12 {
		t.Fatalf("basic (%d, %v) != exhaustive (%d, %v)", pb.Rank, pb.Psi, pe.Rank, pe.Psi)
	}
	if err := ValidatePlan(g, pb); err != nil {
		t.Fatal(err)
	}
}
