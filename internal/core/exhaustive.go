package core

import (
	"math"
	"sort"

	"qosres/internal/qrg"
	"qosres/internal/svc"
)

// Exhaustive enumerates every embedded graph of the QRG and returns the
// exact optimum: highest end-to-end QoS rank first, then smallest Ψ_G.
// Its cost is exponential in the number of components, so it serves as a
// correctness and quality baseline for TwoPass on small services (the
// ablation DESIGN.md calls out), not as a runtime algorithm.
type Exhaustive struct{}

// Name implements Planner.
func (Exhaustive) Name() string { return "exhaustive" }

// Plan implements Planner.
func (Exhaustive) Plan(g *qrg.Graph) (*Plan, error) {
	order, err := g.Service.TopoOrder()
	if err != nil {
		return nil, err
	}

	var (
		bestRank = -1
		bestPsi  = math.Inf(1)
		bestSel  map[svc.ComponentID][2]int // comp -> (in, out)
	)

	selOut := make(map[svc.ComponentID]int, len(order))
	selIn := make(map[svc.ComponentID]int, len(order))

	var recurse func(i int, psi float64)
	recurse = func(i int, psi float64) {
		if i == len(order) {
			sinkOut := selOut[order[len(order)-1]]
			rank := g.Service.RankOf(g.Nodes[sinkOut].Level.Name)
			if rank > bestRank || (rank == bestRank && psi < bestPsi) {
				bestRank = rank
				bestPsi = psi
				bestSel = make(map[svc.ComponentID][2]int, len(order))
				for _, cid := range order {
					bestSel[cid] = [2]int{selIn[cid], selOut[cid]}
				}
			}
			return
		}
		cid := order[i]
		in := embeddedInNode(g, cid, selOut)
		if in < 0 {
			return
		}
		selIn[cid] = in
		for _, eid := range g.OutEdges[in] {
			e := g.Edges[eid]
			if e.Kind != qrg.Translation {
				continue
			}
			selOut[cid] = e.To
			np := psi
			if e.Weight > np {
				np = e.Weight
			}
			recurse(i+1, np)
		}
		delete(selOut, cid)
		delete(selIn, cid)
	}
	recurse(0, 0)

	if bestSel == nil {
		return nil, ErrInfeasible
	}
	fin := make(map[svc.ComponentID]int, len(order))
	fout := make(map[svc.ComponentID]int, len(order))
	for cid, s := range bestSel {
		fin[cid], fout[cid] = s[0], s[1]
	}
	sinkComp, err := g.Service.Sink()
	if err != nil {
		return nil, err
	}
	return assembleDAGPlan(g, order, fin, fout, fout[sinkComp.ID])
}

// embeddedInNode determines the unique Qin node of component cid implied
// by the upstream Qout selections, or -1 when none exists.
func embeddedInNode(g *qrg.Graph, cid svc.ComponentID, selOut map[svc.ComponentID]int) int {
	preds := g.Service.Preds(cid)
	if len(preds) == 0 {
		return g.Source
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
	if len(preds) == 1 {
		q, ok := selOut[preds[0]]
		if !ok {
			return -1
		}
		for _, eid := range g.OutEdges[q] {
			e := g.Edges[eid]
			if e.Kind == qrg.Equivalence && g.Nodes[e.To].Comp == cid {
				return e.To
			}
		}
		return -1
	}
	// Fan-in: find the combination node whose parts are exactly the
	// upstream selections.
	for _, n := range g.Nodes {
		if n.Comp != cid || n.Kind != qrg.In || n.Parts == nil {
			continue
		}
		match := true
		for _, p := range preds {
			q, ok := selOut[p]
			if !ok || n.Parts[p] != q {
				match = false
				break
			}
		}
		if match {
			return n.ID
		}
	}
	return -1
}
