package core

import (
	"container/list"
	"sort"
	"sync"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/qrg"
)

// DefaultPlanMemoSize is the LRU bound of NewPlanMemo: plans are small
// (a handful of choices), so the bound exists to defend against a
// churning key population — a leaking catalogue of templates or
// planner values — rather than against memory pressure.
const DefaultPlanMemoSize = 4096

// PlanMemo memoizes reservation plans per (template, planner) pair,
// validated by the epoch vector of the snapshot they were planned
// against. Back-to-back admissions of the same service against an
// unchanged book skip QRG instantiation and Dijkstra entirely and go
// straight to validate-at-commit; any commit that touches a resource in
// a memoized plan's epoch vector makes that vector stale, which evicts
// exactly that entry (and only that entry) on its next lookup.
//
// Correctness leans on two facts. First, broker epochs are monotone and
// bumped by every availability-affecting mutation, so an epoch vector
// that matches the current snapshot proves the books are exactly as the
// memoized plan observed them — same availabilities, same feasibility.
// Second, commits never trust the plan anyway: validate-at-commit
// re-checks every amount under the stripe locks, so even a plan served
// against a book that changes a microsecond later is caught exactly as
// a freshly computed stale plan would be. The one observable difference
// a memo hit can make is α-flavoured: α keeps evolving with every
// observation tick even while availability is unchanged, so a planner
// consulting α (the tradeoff policy) could in principle choose
// differently on a re-plan. The memo deliberately keys on the epoch
// vector alone — availability-identical books are plan-identical — and
// callers that want α-exact replanning leave the memo off.
//
// Memoized *Plan values are shared between admissions and must be
// treated as immutable by every consumer (they already are: commit
// paths only read them, and Plan.Requirement builds a fresh vector).
type PlanMemo struct {
	mu      sync.Mutex
	entries map[memoKey]*list.Element
	order   *list.List // front = most recently used
	max     int        // 0 = unbounded

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
}

// memoKey identifies one memoized plan: the compiled template (pointer
// identity, like the template cache's service keying) and the planner
// value that produced the plan. Every planner in this package is a
// comparable value (Basic, Tradeoff, TwoPass, Exhaustive are field-wise
// comparable structs; Random is a pointer), so planners distinguish
// entries exactly when they would plan differently.
type memoKey struct {
	tpl     *qrg.Template
	planner Planner
}

// memoEntry is the list-element payload: the key (for map removal on
// eviction), the epoch vector the plan was validated against, and the
// plan itself. At most one entry per key is live: a newer plan for the
// same key replaces the older one.
type memoEntry struct {
	key       memoKey
	resources []string // sorted epoch-vector resource IDs
	epochs    []uint64 // parallel to resources
	plan      *Plan
}

// NewPlanMemo returns an empty memo bounded at DefaultPlanMemoSize,
// registering its counters with r (nil r disables metrics at zero
// cost, the obs convention).
func NewPlanMemo(r *obs.Registry) *PlanMemo {
	return NewPlanMemoSize(r, DefaultPlanMemoSize)
}

// NewPlanMemoSize returns an empty memo holding at most maxEntries
// plans (least-recently-used eviction); 0 means unlimited, negative
// values collapse to 1.
func NewPlanMemoSize(r *obs.Registry, maxEntries int) *PlanMemo {
	if maxEntries < 0 {
		maxEntries = 1
	}
	return &PlanMemo{
		entries: make(map[memoKey]*list.Element),
		order:   list.New(),
		max:     maxEntries,
		hits: r.Counter(obs.MetricPlanMemoHits,
			"Admissions that reused a memoized plan against an unchanged epoch vector."),
		misses: r.Counter(obs.MetricPlanMemoMisses,
			"Admissions that instantiated and planned afresh."),
		evictions: r.Counter(obs.MetricPlanMemoEvictions,
			"Memoized plans invalidated by epoch bumps or displaced by the memo size bound."),
	}
}

// Get returns the memoized plan for (tpl, planner) if the snapshot's
// epoch vector proves the books are unchanged since it was computed. A
// stale entry — any epoch moved — is evicted on the spot and counted as
// an invalidation. Snapshots lacking an epoch for one of the entry's
// resources (degraded or synthetic snapshots) can't validate anything:
// they miss without evicting.
func (m *PlanMemo) Get(tpl *qrg.Template, planner Planner, snap *broker.Snapshot) (*Plan, bool) {
	if m == nil || tpl == nil || snap == nil || snap.Epoch == nil {
		return nil, false
	}
	key := memoKey{tpl: tpl, planner: planner}
	m.mu.Lock()
	el, ok := m.entries[key]
	if !ok {
		m.mu.Unlock()
		m.misses.Inc()
		return nil, false
	}
	e := el.Value.(*memoEntry)
	for i, r := range e.resources {
		cur, ok := snap.Epoch[r]
		if !ok {
			m.mu.Unlock()
			m.misses.Inc()
			return nil, false
		}
		if cur != e.epochs[i] {
			// A commit bumped this resource's epoch: the entry is stale
			// and can never validate again (epochs are monotone), so
			// evict exactly it.
			m.order.Remove(el)
			delete(m.entries, key)
			m.mu.Unlock()
			m.evictions.Inc()
			m.misses.Inc()
			return nil, false
		}
	}
	m.order.MoveToFront(el)
	plan := e.plan
	m.mu.Unlock()
	m.hits.Inc()
	return plan, true
}

// Put memoizes a freshly computed plan against the epoch vector of the
// snapshot it was planned from. Snapshots without a complete epoch map
// make no staleness claim and are not memoized. A previous entry for
// the same key is replaced (its vector is stale or it lost a race;
// either way at most one plan per key stays live).
func (m *PlanMemo) Put(tpl *qrg.Template, planner Planner, snap *broker.Snapshot, plan *Plan) {
	if m == nil || tpl == nil || snap == nil || plan == nil || len(snap.Epoch) == 0 {
		return
	}
	resources := make([]string, 0, len(snap.Epoch))
	for r := range snap.Epoch {
		resources = append(resources, r)
	}
	sort.Strings(resources)
	epochs := make([]uint64, len(resources))
	for i, r := range resources {
		epochs[i] = snap.Epoch[r]
	}
	key := memoKey{tpl: tpl, planner: planner}
	e := &memoEntry{key: key, resources: resources, epochs: epochs, plan: plan}
	m.mu.Lock()
	if el, ok := m.entries[key]; ok {
		el.Value = e
		m.order.MoveToFront(el)
		m.mu.Unlock()
		return
	}
	m.entries[key] = m.order.PushFront(e)
	var displaced int
	for m.max > 0 && len(m.entries) > m.max {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*memoEntry).key)
		displaced++
	}
	m.mu.Unlock()
	for ; displaced > 0; displaced-- {
		m.evictions.Inc()
	}
}

// Len returns the number of live entries, for tests.
func (m *PlanMemo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}
