// Package core implements the paper's primary contribution: the runtime
// algorithms of section 4 that compute an end-to-end multi-resource
// reservation plan from a QoS-Resource Graph.
//
//   - Basic (section 4.1): Dijkstra's algorithm on the QRG with "+"
//     redefined as "max", selecting — among all feasible plans achieving
//     the highest reachable end-to-end QoS — the plan whose bottleneck
//     resource has the smallest contention index.
//   - Tradeoff (section 4.3.1): the basic algorithm followed by the
//     availability-change-index policy that trades end-to-end QoS level
//     for overall reservation success rate.
//   - Random (section 5): the contention-unaware baseline that picks a
//     uniformly random feasible path to the highest reachable QoS level.
//   - TwoPass (section 4.3.2): the two-pass heuristic for services whose
//     dependency graph is a DAG with fan-in/fan-out components.
//   - Exhaustive: an exact embedded-graph enumerator used as a quality
//     baseline for the TwoPass heuristic in tests and ablation benches.
package core

import (
	"errors"
	"fmt"

	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/svc"
)

// ErrInfeasible is returned when no feasible end-to-end reservation plan
// exists under the snapshot the QRG was built from.
var ErrInfeasible = errors.New("core: no feasible end-to-end reservation plan")

// Choice records one component's selected (Qin, Qout) pair and the bound
// resource requirement of its translation edge.
type Choice struct {
	Comp svc.ComponentID
	In   svc.Level
	Out  svc.Level
	Req  qos.ResourceVector
	// Psi is the contention index of this translation edge.
	Psi float64
	// Bottleneck is the edge's bottleneck resource.
	Bottleneck string
}

// Plan is an end-to-end multi-resource reservation plan for one service
// session.
type Plan struct {
	// Choices holds the per-component selections in topological order.
	Choices []Choice
	// EndToEnd is the selected end-to-end QoS level (the sink Qout).
	EndToEnd svc.Level
	// Rank is the paper-style level number of EndToEnd (higher = better).
	Rank int
	// Psi is the contention index of the plan's bottleneck resource —
	// Ψ_P for chains (equation 4) or Ψ_G for embedded graphs (equation 6).
	Psi float64
	// Bottleneck is the plan's bottleneck resource.
	Bottleneck string
	// Alpha is the availability change index of the bottleneck resource.
	Alpha float64
	// Path lists the traversed QRG node IDs from source to sink for chain
	// services; empty for DAG plans (which are embedded graphs, not
	// paths).
	Path []int
	// PathLevels is the dash-joined level-name rendering of Path, the
	// form used by the paper's tables 1-2.
	PathLevels string
}

// Requirement sums the plan's per-choice requirements into the single
// vector the session must reserve, accumulating amounts that target the
// same concrete resource.
func (p *Plan) Requirement() qos.ResourceVector {
	out := make(qos.ResourceVector)
	for _, c := range p.Choices {
		for r, amount := range c.Req {
			out[r] += amount
		}
	}
	return out
}

// Planner computes a reservation plan from a QRG.
type Planner interface {
	// Name identifies the algorithm ("basic", "tradeoff", "random", ...).
	Name() string
	// Plan computes the end-to-end reservation plan, or ErrInfeasible.
	Plan(g *qrg.Graph) (*Plan, error)
}

// finishPlan derives the aggregate fields of a plan from its choices.
func finishPlan(p *Plan) *Plan {
	p.Psi = 0
	for _, c := range p.Choices {
		if c.Psi >= p.Psi {
			if c.Psi > p.Psi || p.Bottleneck == "" {
				p.Bottleneck = c.Bottleneck
			}
			p.Psi = c.Psi
		}
	}
	return p
}

// planFromPath converts a source-to-sink node path in the QRG into a
// Plan. pathEdges holds the edge IDs along the path.
func planFromPath(g *qrg.Graph, nodes []int, pathEdges []int) (*Plan, error) {
	p := &Plan{Path: nodes, PathLevels: g.PathLevels(nodes)}
	for _, eid := range pathEdges {
		e := g.Edges[eid]
		if e.Kind != qrg.Translation {
			continue
		}
		from, to := g.Nodes[e.From], g.Nodes[e.To]
		if from.Comp != to.Comp {
			return nil, fmt.Errorf("core: translation edge %d crosses components %s->%s", eid, from.Comp, to.Comp)
		}
		p.Choices = append(p.Choices, Choice{
			Comp:       from.Comp,
			In:         from.Level,
			Out:        to.Level,
			Req:        e.Req.Clone(),
			Psi:        e.Weight,
			Bottleneck: e.Bottleneck,
		})
	}
	if len(nodes) > 0 {
		sinkNode := g.Nodes[nodes[len(nodes)-1]]
		p.EndToEnd = sinkNode.Level
		p.Rank = g.Service.RankOf(sinkNode.Level.Name)
	}
	finishPlan(p)
	if g.Snapshot != nil {
		p.Alpha = g.Snapshot.Alpha[p.Bottleneck]
		if p.Bottleneck == "" {
			p.Alpha = 1
		}
	}
	return p, nil
}
