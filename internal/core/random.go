package core

import (
	"fmt"
	"math/rand"

	"qosres/internal/qrg"
)

// Random is the contention-unaware comparison algorithm of section 5: it
// is QoS-aware (it still targets the highest reachable end-to-end QoS
// level) but, instead of the max-plus shortest path, it selects a
// uniformly random feasible path leading to that level.
//
// Uniformity is exact: paths are counted by dynamic programming over the
// QRG (a DAG) and the path is sampled backward with probabilities
// proportional to the path counts.
type Random struct {
	// RNG supplies randomness; it must be non-nil.
	RNG *rand.Rand
}

// NewRandom builds a Random planner from a seed.
func NewRandom(seed int64) *Random {
	return &Random{RNG: rand.New(rand.NewSource(seed))}
}

// Name implements Planner.
func (*Random) Name() string { return "random" }

// Plan implements Planner.
func (r *Random) Plan(g *qrg.Graph) (*Plan, error) {
	if r.RNG == nil {
		return nil, fmt.Errorf("core: Random planner has no RNG")
	}
	if !g.Service.IsChain() {
		return nil, fmt.Errorf("core: Random planner supports chain services only, service %s is a DAG", g.Service.Name)
	}
	counts := pathCounts(g)
	for _, sink := range g.Sinks {
		if counts[sink.Node] == 0 {
			continue
		}
		nodes, edges := samplePath(g, counts, sink.Node, r.RNG)
		return planFromPath(g, nodes, edges)
	}
	return nil, ErrInfeasible
}

// pathCounts returns, for every node, the number of distinct
// source-to-node paths. Node IDs are created in topological order by the
// QRG builder, so a single increasing sweep suffices. Counts are float64:
// they stay tiny for realistic QRGs and degrade gracefully (to
// approximately-uniform sampling) if a pathological graph overflows
// integer range.
func pathCounts(g *qrg.Graph) []float64 {
	counts := make([]float64, len(g.Nodes))
	counts[g.Source] = 1
	for v := range g.Nodes {
		if counts[v] == 0 {
			continue
		}
		for _, eid := range g.OutEdges[v] {
			counts[g.Edges[eid].To] += counts[v]
		}
	}
	return counts
}

// samplePath walks backward from sink to source choosing each incoming
// edge with probability proportional to the predecessor's path count,
// which yields a uniform distribution over all source-to-sink paths.
func samplePath(g *qrg.Graph, counts []float64, sink int, rng *rand.Rand) (nodes []int, edges []int) {
	cur := sink
	for cur != g.Source {
		nodes = append(nodes, cur)
		total := 0.0
		for _, eid := range g.InEdges[cur] {
			total += counts[g.Edges[eid].From]
		}
		pick := rng.Float64() * total
		chosen := -1
		for _, eid := range g.InEdges[cur] {
			c := counts[g.Edges[eid].From]
			if c == 0 {
				continue
			}
			pick -= c
			chosen = eid
			if pick <= 0 {
				break
			}
		}
		edges = append(edges, chosen)
		cur = g.Edges[chosen].From
	}
	nodes = append(nodes, g.Source)
	reverseInts(nodes)
	reverseInts(edges)
	return nodes, edges
}
