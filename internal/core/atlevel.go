package core

import (
	"qosres/internal/qrg"
)

// AtLevel plans the service at exactly one named end-to-end level — no
// policy choice, no fallback. It is the planning half of mid-session
// renegotiation: the adaptation layer decides the target level (one
// rank up or down from the session's current one) and needs the cheapest
// feasible plan at that level or a clean ErrInfeasible, never a plan at
// some other level the tradeoff policy would prefer. The struct is
// comparable, so renegotiation plans share the runtime's plan memo with
// ordinary admissions.
type AtLevel struct {
	// Level is the required end-to-end level name.
	Level string
}

// Name implements Planner.
func (p AtLevel) Name() string { return "atlevel:" + p.Level }

// Plan implements Planner.
func (p AtLevel) Plan(g *qrg.Graph) (*Plan, error) {
	choose := func(sinks []sinkSummary) sinkSummary {
		for _, s := range sinks {
			if g.Nodes[s.sink.Node].Level.Name == p.Level {
				return s
			}
		}
		// The callback cannot signal infeasibility; return any sink and
		// let Plan reject the mismatch below.
		return sinks[0]
	}
	if !g.Service.IsChain() {
		plan, err := planDAG(g, choose)
		if err != nil {
			return nil, err
		}
		if plan.EndToEnd.Name != p.Level {
			return nil, ErrInfeasible
		}
		return plan, nil
	}
	s := maxPlusDijkstra(g)
	defer s.release()
	for _, sum := range reachableSinks(g, s) {
		if g.Nodes[sum.sink.Node].Level.Name != p.Level {
			continue
		}
		nodes, edges := s.backtrack(sum.sink.Node)
		plan, err := planFromPath(g, nodes, edges)
		if err != nil {
			return nil, err
		}
		plan.Alpha = sum.alpha
		return plan, nil
	}
	return nil, ErrInfeasible
}
