package core

import (
	"fmt"
	"math"
	"sort"

	"qosres/internal/qrg"
	"qosres/internal/svc"
)

// TwoPass is the efficient heuristic of section 4.3.2 for services whose
// dependency graph is a DAG with fan-in and fan-out components. An
// end-to-end reservation plan is then an embedded graph G in the QRG
// (one Qin and one Qout node per component, consistently connected), and
// the goal is the embedded graph reaching the highest end-to-end QoS with
// the smallest Ψ_G = max over its edges of Ψ_e (equation 6).
//
// Pass I resembles the max-plus Dijkstra, except that the value of a
// fan-in component's Qin node is the maximum of the values of the Qout
// nodes it concatenates. Pass II backtracks from the best reachable sink;
// when the backtracked branches of a fan-out component fail to converge
// on a single Qout node, the non-convergence is resolved locally: the
// downstream components' backtracked Qout nodes stay fixed, and the
// fan-out component's Qout node is re-chosen to minimize the highest Ψ_e
// needed to reach those fixed nodes.
//
// As the paper notes, the heuristic has two limitations: a sink reachable
// after pass I may admit no feasible embedded graph in pass II
// (ErrInfeasible is returned), and the local resolution may not yield the
// globally smallest Ψ_G (see Exhaustive for the exact baseline).
type TwoPass struct{}

// Name implements Planner.
func (TwoPass) Name() string { return "twopass" }

// Plan implements Planner.
func (TwoPass) Plan(g *qrg.Graph) (*Plan, error) {
	return planDAG(g, func(sinks []sinkSummary) sinkSummary { return sinks[0] })
}

// dagValues is the pass-I result.
type dagValues struct {
	// val[v] is the pass-I value of node v.
	val []float64
	// pred[v] is the chosen incoming edge for every non-fan-in node.
	pred []int
}

// passI sweeps the QRG in topological order (node IDs are created
// topologically by the builder).
func passI(g *qrg.Graph) *dagValues {
	n := len(g.Nodes)
	d := &dagValues{val: make([]float64, n), pred: make([]int, n)}
	inW := make([]float64, n)
	for i := range d.val {
		d.val[i] = math.Inf(1)
		d.pred[i] = -1
		inW[i] = math.Inf(1)
	}
	d.val[g.Source] = 0
	for v := range g.Nodes {
		node := g.Nodes[v]
		if v == g.Source {
			continue
		}
		if node.Parts != nil {
			// Fan-in Qin node: the maximum of the concatenated Qout
			// values (section 4.3.2, pass I).
			m := 0.0
			ok := true
			for _, eid := range g.InEdges[v] {
				pv := d.val[g.Edges[eid].From]
				if math.IsInf(pv, 1) {
					ok = false
					break
				}
				if pv > m {
					m = pv
				}
			}
			if ok && len(g.InEdges[v]) > 0 {
				d.val[v] = m
			}
			continue
		}
		for _, eid := range g.InEdges[v] {
			e := g.Edges[eid]
			pv := d.val[e.From]
			if math.IsInf(pv, 1) {
				continue
			}
			nd := pv
			if e.Weight > nd {
				nd = e.Weight
			}
			switch {
			case nd < d.val[v],
				nd == d.val[v] && e.Weight < inW[v],
				nd == d.val[v] && e.Weight == inW[v] && d.pred[v] >= 0 && pv < d.val[g.Edges[d.pred[v]].From]:
				d.val[v] = nd
				d.pred[v] = eid
				inW[v] = e.Weight
			}
		}
	}
	return d
}

// bottleneckAlpha finds the α of the maximum-weight translation edge on
// the provisional pass-I backtrack from v (fan-in nodes expand to all
// their parts). It is the DAG analogue of attaching (ψ, α) of the
// bottleneck resource to each sink.
func bottleneckAlpha(g *qrg.Graph, d *dagValues, v int) float64 {
	alpha := 1.0
	bw := -1.0
	bestEdge := -1
	seen := make(map[int]bool)
	stack := []int{v}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[u] {
			continue
		}
		seen[u] = true
		node := g.Nodes[u]
		if node.Parts != nil {
			// Walk the fan-in parts in sorted node order, and break weight
			// ties on the lowest edge ID: both keep the selected α
			// independent of map iteration order, so equal-Ψ plans report
			// a stable bottleneck trend under the tradeoff policy.
			outs := make([]int, 0, len(node.Parts))
			for _, out := range node.Parts {
				outs = append(outs, out)
			}
			sort.Ints(outs)
			stack = append(stack, outs...)
			continue
		}
		eid := d.pred[u]
		if eid < 0 {
			continue
		}
		e := g.Edges[eid]
		if e.Kind == qrg.Translation &&
			(e.Weight > bw || (e.Weight == bw && eid < bestEdge)) {
			bw = e.Weight
			bestEdge = eid
			alpha = e.Alpha
		}
		stack = append(stack, e.From)
	}
	return alpha
}

// planDAG runs the two-pass heuristic; the choose callback selects the
// target sink from the reachable sinks (best-rank-first), allowing the
// tradeoff policy to compose with the heuristic.
func planDAG(g *qrg.Graph, choose func([]sinkSummary) sinkSummary) (*Plan, error) {
	d := passI(g)

	var sinks []sinkSummary
	for _, sink := range g.Sinks {
		if math.IsInf(d.val[sink.Node], 1) {
			continue
		}
		sinks = append(sinks, sinkSummary{
			sink:  sink,
			psi:   d.val[sink.Node],
			alpha: bottleneckAlpha(g, d, sink.Node),
		})
	}
	if len(sinks) == 0 {
		return nil, ErrInfeasible
	}
	target := choose(sinks)

	plan, err := passII(g, d, target.sink.Node)
	if err != nil {
		return nil, err
	}
	plan.Alpha = target.alpha
	return plan, nil
}

// passII backtracks from the chosen sink node, resolving fan-out
// non-convergence locally, and assembles the embedded graph's plan.
func passII(g *qrg.Graph, d *dagValues, sinkNode int) (*Plan, error) {
	service := g.Service
	order, err := service.TopoOrder()
	if err != nil {
		return nil, err
	}

	selOut := make(map[svc.ComponentID]int, len(order))
	selIn := make(map[svc.ComponentID]int, len(order))
	// demands[c] is the set of Qout nodes of c demanded by already
	// processed downstream components.
	demands := make(map[svc.ComponentID]map[int]bool)

	sinkComp := g.Nodes[sinkNode].Comp

	for i := len(order) - 1; i >= 0; i-- {
		cid := order[i]
		var out int
		if cid == sinkComp {
			out = sinkNode
		} else {
			ds := demands[cid]
			if len(ds) == 0 {
				return nil, fmt.Errorf("core: two-pass backtrack never demanded component %s", cid)
			}
			if len(ds) == 1 {
				for o := range ds {
					out = o
				}
			} else {
				out, err = resolveFanOut(g, d, cid, selOut, selIn)
				if err != nil {
					return nil, err
				}
			}
		}
		if math.IsInf(d.val[out], 1) {
			return nil, ErrInfeasible
		}
		selOut[cid] = out
		eid := d.pred[out]
		if eid < 0 {
			return nil, fmt.Errorf("core: two-pass: reachable Qout node %d of %s has no predecessor", out, cid)
		}
		in := g.Edges[eid].From
		selIn[cid] = in

		// Propagate demands to the upstream components.
		inNode := g.Nodes[in]
		switch {
		case inNode.Parts != nil:
			for up, upOut := range inNode.Parts {
				addDemand(demands, up, upOut)
			}
		case in != g.Source:
			peid := d.pred[in]
			if peid < 0 {
				return nil, fmt.Errorf("core: two-pass: Qin node %d of %s has no predecessor", in, cid)
			}
			upOut := g.Edges[peid].From
			addDemand(demands, g.Nodes[upOut].Comp, upOut)
		}
	}

	return assembleDAGPlan(g, order, selIn, selOut, sinkNode)
}

func addDemand(demands map[svc.ComponentID]map[int]bool, comp svc.ComponentID, out int) {
	m := demands[comp]
	if m == nil {
		m = make(map[int]bool)
		demands[comp] = m
	}
	m[out] = true
}

// resolveFanOut applies the local non-convergence policy: the downstream
// components' already selected Qout nodes stay fixed; among the fan-out
// component's reachable Qout nodes, pick the one minimizing the maximum
// Ψ_e needed by the downstream components to reach their fixed Qout nodes
// from the Qin nodes this candidate induces. The induced Qin selections
// of the downstream components are updated in place.
func resolveFanOut(g *qrg.Graph, d *dagValues, cid svc.ComponentID, selOut, selIn map[svc.ComponentID]int) (int, error) {
	downs := g.Service.Succs(cid)
	sort.Slice(downs, func(i, j int) bool { return downs[i] < downs[j] })

	bestQ := -1
	bestCost := math.Inf(1)
	var bestIns map[svc.ComponentID]int

	for _, q := range outNodesOf(g, cid) {
		if math.IsInf(d.val[q], 1) || d.pred[q] < 0 {
			continue
		}
		cost := 0.0
		ins := make(map[svc.ComponentID]int, len(downs))
		ok := true
		for _, a := range downs {
			aOut, haveOut := selOut[a]
			aIn, haveIn := selIn[a]
			if !haveOut || !haveIn {
				ok = false
				break
			}
			newIn := inducedInNode(g, a, q, aIn, cid)
			if newIn < 0 {
				ok = false
				break
			}
			w, found := translationWeight(g, newIn, aOut)
			if !found {
				ok = false
				break
			}
			if w > cost {
				cost = w
			}
			ins[a] = newIn
		}
		if !ok {
			continue
		}
		if cost < bestCost {
			bestCost = cost
			bestQ = q
			bestIns = ins
		}
	}
	if bestQ < 0 {
		// Heuristic limitation (1): the sink was reachable after pass I,
		// yet no single Qout node of the fan-out component serves all
		// fixed downstream choices.
		return 0, ErrInfeasible
	}
	for a, in := range bestIns {
		selIn[a] = in
	}
	return bestQ, nil
}

// outNodesOf lists the Qout node IDs of a component in creation
// (and hence deterministic) order.
func outNodesOf(g *qrg.Graph, cid svc.ComponentID) []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Comp == cid && n.Kind == qrg.Out {
			out = append(out, n.ID)
		}
	}
	return out
}

// inducedInNode finds the Qin node of component a reached from Qout node
// q of the upstream component upComp, holding the other fan-in parts of
// a's current Qin node fixed. Returns -1 when no such node exists.
func inducedInNode(g *qrg.Graph, a svc.ComponentID, q, curIn int, upComp svc.ComponentID) int {
	curParts := g.Nodes[curIn].Parts
	for _, eid := range g.OutEdges[q] {
		e := g.Edges[eid]
		if e.Kind != qrg.Equivalence {
			continue
		}
		cand := e.To
		node := g.Nodes[cand]
		if node.Comp != a {
			continue
		}
		if curParts == nil {
			// a has a single upstream component; any equivalence target
			// of q in a is the induced node.
			return cand
		}
		// Fan-in: every part except upComp's must match the current
		// selection.
		match := true
		for up, out := range node.Parts {
			if up == upComp {
				if out != q {
					match = false
					break
				}
				continue
			}
			if curParts[up] != out {
				match = false
				break
			}
		}
		if match {
			return cand
		}
	}
	return -1
}

// translationWeight returns the weight of the translation edge from Qin
// node in to Qout node out, if it exists.
func translationWeight(g *qrg.Graph, in, out int) (float64, bool) {
	for _, eid := range g.OutEdges[in] {
		e := g.Edges[eid]
		if e.Kind == qrg.Translation && e.To == out {
			return e.Weight, true
		}
	}
	return 0, false
}

// assembleDAGPlan builds the Plan from the per-component selections.
func assembleDAGPlan(g *qrg.Graph, order []svc.ComponentID, selIn, selOut map[svc.ComponentID]int, sinkNode int) (*Plan, error) {
	p := &Plan{}
	for _, cid := range order {
		in, out := selIn[cid], selOut[cid]
		eid := -1
		for _, cand := range g.OutEdges[in] {
			e := g.Edges[cand]
			if e.Kind == qrg.Translation && e.To == out {
				eid = cand
				break
			}
		}
		if eid < 0 {
			return nil, fmt.Errorf("core: two-pass: no translation edge for component %s selection", cid)
		}
		e := g.Edges[eid]
		p.Choices = append(p.Choices, Choice{
			Comp:       cid,
			In:         g.Nodes[in].Level,
			Out:        g.Nodes[out].Level,
			Req:        e.Req.Clone(),
			Psi:        e.Weight,
			Bottleneck: e.Bottleneck,
		})
	}
	sink := g.Nodes[sinkNode]
	p.EndToEnd = sink.Level
	p.Rank = g.Service.RankOf(sink.Level.Name)
	finishPlan(p)
	if g.Snapshot != nil && p.Bottleneck != "" {
		p.Alpha = g.Snapshot.Alpha[p.Bottleneck]
	} else {
		p.Alpha = 1
	}
	return p, nil
}
