package core

import (
	"errors"
	"math"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/svc"
	"qosres/internal/workload"
)

// buildDiamond constructs a fan-out/fan-in diamond c1 -> {c2, c3} -> c4
// with caller-chosen translation tables (weights become edge weights
// against unit availability).
func buildDiamond(t *testing.T, t1, t2, t3, t4 svc.TranslationTable) *qrg.Graph {
	t.Helper()
	return buildDiamondAlpha(t, t1, t2, t3, t4, nil)
}

// buildDiamondAlpha is buildDiamond with per-component α overrides for
// the resource snapshot (default 1).
func buildDiamondAlpha(t *testing.T, t1, t2, t3, t4 svc.TranslationTable,
	alphas map[svc.ComponentID]float64) *qrg.Graph {
	t.Helper()
	lv := func(name string, q float64) svc.Level {
		return svc.Level{Name: name, Vector: qos.MustVector(qos.P("q", q))}
	}
	qa := lv("Qa", 0)
	x1, x2 := lv("X1", 1), lv("X2", 2)
	b1, b2 := lv("B1", 1), lv("B2", 2) // c2 inputs == c1 outputs
	c1l, c2l := lv("C1", 1), lv("C2", 2)
	y1, y2 := lv("Y1", 10), lv("Y2", 11)
	z1, z2 := lv("Z1", 20), lv("Z2", 21)
	concat := func(name string, a, b svc.Level) svc.Level {
		return svc.Level{Name: name, Vector: qos.ConcatAll(
			[]string{"c2", "c3"}, []qos.Vector{a.Vector, b.Vector})}
	}
	f11 := concat("F11", y1, z1)
	f12 := concat("F12", y1, z2)
	f21 := concat("F21", y2, z1)
	f22 := concat("F22", y2, z2)
	sink1, sink2 := lv("S1", 90), lv("S2", 91)

	comps := []*svc.Component{
		{ID: "c1", In: []svc.Level{qa}, Out: []svc.Level{x1, x2},
			Translate: t1.Func(), Resources: []string{"r"}},
		{ID: "c2", In: []svc.Level{b1, b2}, Out: []svc.Level{y1, y2},
			Translate: t2.Func(), Resources: []string{"r"}},
		{ID: "c3", In: []svc.Level{c1l, c2l}, Out: []svc.Level{z1, z2},
			Translate: t3.Func(), Resources: []string{"r"}},
		{ID: "c4", In: []svc.Level{f11, f12, f21, f22}, Out: []svc.Level{sink1, sink2},
			Translate: t4.Func(), Resources: []string{"r"}},
	}
	service, err := svc.NewService("diamond", comps, []svc.Edge{
		{From: "c1", To: "c2"},
		{From: "c1", To: "c3"},
		{From: "c2", To: "c4"},
		{From: "c3", To: "c4"},
	}, []string{"S1", "S2"})
	if err != nil {
		t.Fatal(err)
	}
	binding := svc.Binding{}
	avail := qos.ResourceVector{}
	alpha := map[string]float64{}
	for _, c := range comps {
		binding[c.ID] = map[string]string{"r": "r@" + string(c.ID)}
		avail["r@"+string(c.ID)] = 1
		a := 1.0
		if v, ok := alphas[c.ID]; ok {
			a = v
		}
		alpha["r@"+string(c.ID)] = a
	}
	g, err := qrg.Build(service, binding, &broker.Snapshot{Avail: avail, Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func rv(w float64) qos.ResourceVector { return qos.ResourceVector{"r": w} }

func TestTwoPassHeuristicLimitationOne(t *testing.T) {
	// Pass I reaches the best sink, but no single c1 output serves both
	// branches' fixed choices: c2 only accepts X1 (via B1) and c3 only
	// accepts X2 (via C2). Pass II must return ErrInfeasible even though
	// pass I deemed the sink reachable — the heuristic limitation (1)
	// the paper documents.
	g := buildDiamond(t,
		svc.TranslationTable{"Qa": {"X1": rv(0.1), "X2": rv(0.1)}},
		svc.TranslationTable{"B1": {"Y1": rv(0.2)}},  // c2 needs X1
		svc.TranslationTable{"C2": {"Z1": rv(0.2)}},  // c3 needs X2
		svc.TranslationTable{"F11": {"S1": rv(0.3)}}, // sink needs (Y1, Z1)
	)
	// Sanity: the sink exists in the QRG (pass I reachable) because each
	// branch is individually feasible.
	if len(g.Sinks) == 0 {
		t.Fatal("sink not even constructed")
	}
	_, err := (TwoPass{}).Plan(g)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible (limitation 1)", err)
	}
	// The exact enumerator agrees: no embedded graph exists at all.
	if _, err := (Exhaustive{}).Plan(g); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("exhaustive err = %v", err)
	}
}

func TestTwoPassConvergentFanOutNoResolution(t *testing.T) {
	// Both branches demand the same c1 output: pass II needs no
	// resolution and must succeed.
	g := buildDiamond(t,
		svc.TranslationTable{"Qa": {"X1": rv(0.1), "X2": rv(0.5)}},
		svc.TranslationTable{"B1": {"Y1": rv(0.2)}, "B2": {"Y1": rv(0.9)}},
		svc.TranslationTable{"C1": {"Z1": rv(0.25)}, "C2": {"Z1": rv(0.9)}},
		svc.TranslationTable{"F11": {"S1": rv(0.3)}},
	)
	p, err := (TwoPass{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.EndToEnd.Name != "S1" {
		t.Fatalf("sink = %s", p.EndToEnd.Name)
	}
	if math.Abs(p.Psi-0.3) > 1e-12 {
		t.Fatalf("psi = %v, want 0.3", p.Psi)
	}
	for _, c := range p.Choices {
		if c.Comp == "c1" && c.Out.Name != "X1" {
			t.Fatalf("c1 out = %s, want X1", c.Out.Name)
		}
	}
}

func TestTwoPassResolutionPicksCheaperCandidate(t *testing.T) {
	// c2's best route comes via X1 and c3's via X2 (non-convergence).
	// Serving both from X1 costs max(0.2, 0.6); from X2 max(0.5, 0.3):
	// the resolution must pick X2 at cost 0.5.
	g := buildDiamond(t,
		svc.TranslationTable{"Qa": {"X1": rv(0.05), "X2": rv(0.1)}},
		svc.TranslationTable{"B1": {"Y1": rv(0.2)}, "B2": {"Y1": rv(0.5)}},
		svc.TranslationTable{"C1": {"Z1": rv(0.6)}, "C2": {"Z1": rv(0.3)}},
		svc.TranslationTable{"F11": {"S1": rv(0.1)}},
	)
	p, err := (TwoPass{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	var c1Out string
	for _, c := range p.Choices {
		if c.Comp == "c1" {
			c1Out = c.Out.Name
		}
	}
	if c1Out != "X2" {
		t.Fatalf("resolution picked %s, want X2", c1Out)
	}
	if math.Abs(p.Psi-0.5) > 1e-12 {
		t.Fatalf("psi = %v, want 0.5", p.Psi)
	}
	// Exhaustive agrees on this instance.
	pe, err := (Exhaustive{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe.Psi-p.Psi) > 1e-12 {
		t.Fatalf("exhaustive psi %v != twopass %v", pe.Psi, p.Psi)
	}
}

func TestTwoPassFallsBackToLowerSink(t *testing.T) {
	// The top sink S1 needs the infeasible combination; S2 is reachable
	// via (Y2, Z2). TwoPass must deliver S2.
	g := buildDiamond(t,
		svc.TranslationTable{"Qa": {"X1": rv(0.1), "X2": rv(0.1)}},
		svc.TranslationTable{"B1": {"Y2": rv(0.2)}},
		svc.TranslationTable{"C1": {"Z2": rv(0.2)}},
		svc.TranslationTable{"F22": {"S2": rv(0.3)}},
	)
	p, err := (TwoPass{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.EndToEnd.Name != "S2" || p.Rank != 1 {
		t.Fatalf("sink = %s rank %d", p.EndToEnd.Name, p.Rank)
	}
}

func TestPassIValuesOnFigure8(t *testing.T) {
	// Spot-check pass I values on the figure 6-8 instance: the combo
	// (Qn, Qp) must carry max(0.30, 0.20) = 0.30 and sink Qv
	// max(0.30, 0.18) = 0.30.
	g := figure8Graph(t)
	d := passI(g)
	byName := map[string]int{}
	for _, n := range g.Nodes {
		// Fan-in nodes share declared names with combos; the figure-8
		// model gives each combo a distinct declared level, so names are
		// unique here.
		byName[n.Level.Name] = n.ID
	}
	if v := d.val[byName["Qv"]]; math.Abs(v-0.30) > 1e-12 {
		t.Fatalf("val(Qv) = %v, want 0.30", v)
	}
	if v := d.val[byName["Qr"]]; math.Abs(v-0.30) > 1e-12 {
		t.Fatalf("val(Qr) = %v, want 0.30 (max of branch values)", v)
	}
	if v := d.val[byName["Qw"]]; math.Abs(v-0.15) > 1e-12 {
		t.Fatalf("val(Qw) = %v, want 0.15", v)
	}
}

func figure8Graph(t *testing.T) *qrg.Graph {
	t.Helper()
	g, err := qrg.Build(dagFixtureService(), dagFixtureBinding(), dagFixtureSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Local aliases of the workload DAG fixture to avoid an import cycle in
// helper naming.
func dagFixtureService() *svc.Service      { return workload.DagService() }
func dagFixtureBinding() svc.Binding       { return workload.DagBinding() }
func dagFixtureSnapshot() *broker.Snapshot { return workload.DagSnapshot() }

func TestBottleneckAlphaDeterministicOnWeightTies(t *testing.T) {
	// Both fan-in branches carry the same bottleneck weight 0.4 but
	// different α (c2's resource trends down, c3's up). bottleneckAlpha
	// walks the fan-in Parts map; without the sorted walk and the
	// lowest-edge-ID tie-break the reported α would depend on map
	// iteration order. Rebuild and replan repeatedly: the α (and the
	// whole plan) must never change.
	plan := func() *Plan {
		g := buildDiamondAlpha(t,
			svc.TranslationTable{"Qa": {"X1": rv(0.1)}},
			svc.TranslationTable{"B1": {"Y1": rv(0.4)}},
			svc.TranslationTable{"C1": {"Z1": rv(0.4)}},
			svc.TranslationTable{"F11": {"S1": rv(0.2)}},
			map[svc.ComponentID]float64{"c2": 0.5, "c3": 1.5},
		)
		p, err := (TwoPass{}).Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	first := plan()
	for i := 0; i < 50; i++ {
		p := plan()
		if p.Alpha != first.Alpha {
			t.Fatalf("run %d: alpha = %v, first run %v (map-order dependent)", i, p.Alpha, first.Alpha)
		}
		if p.Psi != first.Psi || p.EndToEnd.Name != first.EndToEnd.Name {
			t.Fatalf("run %d: plan (%v, %s) differs from first (%v, %s)",
				i, p.Psi, p.EndToEnd.Name, first.Psi, first.EndToEnd.Name)
		}
	}
	// The tie must resolve to one of the tied branches' α, not the
	// neutral default.
	if first.Alpha != 0.5 && first.Alpha != 1.5 {
		t.Fatalf("alpha = %v, want a tied branch's α", first.Alpha)
	}
}
