package core

import (
	"testing"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/qrg"
	"qosres/internal/topo"
)

// memoSnap builds a snapshot carrying only an epoch vector — all Get
// and Put read from a snapshot.
func memoSnap(epochs map[string]uint64) *broker.Snapshot {
	return &broker.Snapshot{Epoch: epochs}
}

func memoCounts(t *testing.T, reg *obs.Registry) (hits, misses, evictions float64) {
	t.Helper()
	snap := reg.Snapshot()
	for _, c := range snap.Counters {
		switch c.Name {
		case obs.MetricPlanMemoHits:
			hits += c.Value
		case obs.MetricPlanMemoMisses:
			misses += c.Value
		case obs.MetricPlanMemoEvictions:
			evictions += c.Value
		}
	}
	return
}

// TestPlanMemoExactInvalidation pins the eviction contract: a commit
// that bumps any resource in a memoized plan's epoch vector evicts
// exactly that entry — and only that entry; entries over disjoint
// resources keep hitting.
func TestPlanMemoExactInvalidation(t *testing.T) {
	reg := obs.New()
	m := NewPlanMemo(reg)
	tplA, tplB := &qrg.Template{}, &qrg.Template{}
	planA, planB := &Plan{Rank: 1}, &Plan{Rank: 2}
	planner := Basic{}

	m.Put(tplA, planner, memoSnap(map[string]uint64{"cpu@H1": 3, "net:H1->H2": 7}), planA)
	m.Put(tplB, planner, memoSnap(map[string]uint64{"cpu@H3": 5, "net:H3->H4": 2}), planB)
	if m.Len() != 2 {
		t.Fatalf("entries = %d, want 2", m.Len())
	}

	// Unchanged epochs: both hit, and A returns the exact plan object.
	if p, ok := m.Get(tplA, planner, memoSnap(map[string]uint64{"cpu@H1": 3, "net:H1->H2": 7})); !ok || p != planA {
		t.Fatalf("unchanged epochs: Get(A) = (%v, %v), want (planA, true)", p, ok)
	}
	if _, ok := m.Get(tplB, planner, memoSnap(map[string]uint64{"cpu@H3": 5, "net:H3->H4": 2})); !ok {
		t.Fatal("unchanged epochs: Get(B) missed")
	}

	// A commit touching one of A's resources: A is evicted on the spot,
	// B survives untouched.
	if _, ok := m.Get(tplA, planner, memoSnap(map[string]uint64{"cpu@H1": 4, "net:H1->H2": 7})); ok {
		t.Fatal("stale epoch vector: Get(A) hit")
	}
	if m.Len() != 1 {
		t.Fatalf("after invalidation: entries = %d, want 1 (only A evicted)", m.Len())
	}
	if _, ok := m.Get(tplB, planner, memoSnap(map[string]uint64{"cpu@H3": 5, "net:H3->H4": 2})); !ok {
		t.Fatal("B was evicted by A's invalidation")
	}

	// A snapshot missing one of the entry's resources (degraded host)
	// can't validate anything: miss without evicting.
	if _, ok := m.Get(tplB, planner, memoSnap(map[string]uint64{"cpu@H3": 5})); ok {
		t.Fatal("incomplete epoch vector validated a memoized plan")
	}
	if m.Len() != 1 {
		t.Fatalf("incomplete vector evicted: entries = %d, want 1", m.Len())
	}

	// Distinct planners are distinct keys even for the same template.
	if _, ok := m.Get(tplB, Tradeoff{}, memoSnap(map[string]uint64{"cpu@H3": 5, "net:H3->H4": 2})); ok {
		t.Fatal("planner is not part of the memo key")
	}

	hits, misses, evictions := memoCounts(t, reg)
	if hits != 3 || evictions != 1 {
		t.Fatalf("hits/evictions = %g/%g, want 3/1", hits, evictions)
	}
	if misses < 3 {
		t.Fatalf("misses = %g, want >= 3", misses)
	}
}

// TestPlanMemoDuplicateResourceIDs is the stripe-sharding edge case
// carried over from the lock-stripe work: two independent brokers that
// happen to publish the SAME resource ID (separate pools, as in
// federated or test deployments) must invalidate independently — a
// commit on one pool's broker evicts only the template memoized
// against that pool's epochs, while the identically-named entry built
// from the other pool keeps hitting.
func TestPlanMemoDuplicateResourceIDs(t *testing.T) {
	m := NewPlanMemo(nil)
	pools := [2]*broker.Pool{}
	snaps := [2]*broker.Snapshot{}
	tpls := [2]*qrg.Template{{}, {}}
	plans := [2]*Plan{{Rank: 1}, {Rank: 2}}
	res := []string{"cpu@H1"}
	for i := range pools {
		pools[i] = broker.NewPool(topo.Figure9())
		if _, err := pools[i].AddLocal("cpu", "H1", 100); err != nil {
			t.Fatal(err)
		}
		var err error
		if snaps[i], err = pools[i].Snapshot(1, res); err != nil {
			t.Fatal(err)
		}
		m.Put(tpls[i], Basic{}, snaps[i], plans[i])
	}
	if m.Len() != 2 {
		t.Fatalf("entries = %d, want 2", m.Len())
	}

	// Commit on pool 0's cpu@H1 only.
	b, _ := pools[0].Get("cpu@H1")
	if _, err := b.Reserve(2, 10); err != nil {
		t.Fatal(err)
	}
	s0, err := pools[0].Snapshot(3, res)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := pools[1].Snapshot(3, res)
	if err != nil {
		t.Fatal(err)
	}

	if _, ok := m.Get(tpls[0], Basic{}, s0); ok {
		t.Fatal("pool-0 commit did not invalidate pool-0's entry")
	}
	if p, ok := m.Get(tpls[1], Basic{}, s1); !ok || p != plans[1] {
		t.Fatal("pool-0 commit evicted pool-1's identically-named entry")
	}
	if m.Len() != 1 {
		t.Fatalf("entries = %d, want 1", m.Len())
	}
}

// TestPlanMemoLRUBound pins the size bound: the oldest entry is
// displaced once the memo exceeds max, counting an eviction.
func TestPlanMemoLRUBound(t *testing.T) {
	m := NewPlanMemoSize(nil, 2)
	tpls := []*qrg.Template{{}, {}, {}}
	for i, tpl := range tpls {
		m.Put(tpl, Basic{}, memoSnap(map[string]uint64{"r": uint64(i)}), &Plan{Rank: i})
	}
	if m.Len() != 2 {
		t.Fatalf("entries = %d, want 2", m.Len())
	}
	if _, ok := m.Get(tpls[0], Basic{}, memoSnap(map[string]uint64{"r": 0})); ok {
		t.Fatal("oldest entry survived the size bound")
	}
	for i := 1; i < 3; i++ {
		if p, ok := m.Get(tpls[i], Basic{}, memoSnap(map[string]uint64{"r": uint64(i)})); !ok || p.Rank != i {
			t.Fatalf("entry %d displaced, want resident", i)
		}
	}
	// Nil memo and nil snapshot are inert.
	var nilMemo *PlanMemo
	if _, ok := nilMemo.Get(tpls[0], Basic{}, memoSnap(nil)); ok {
		t.Fatal("nil memo hit")
	}
	m.Put(tpls[0], Basic{}, &broker.Snapshot{}, &Plan{})
	if m.Len() != 2 {
		t.Fatal("epoch-free snapshot was memoized")
	}
}
