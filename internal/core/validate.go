package core

import (
	"fmt"
	"math"
	"sort"

	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/svc"
)

// ValidatePlan checks that a plan is a consistent, feasible selection
// over the QRG's service and snapshot: exactly one (Qin, Qout) choice
// per component; every choice supported by the component's translation
// function with the recorded requirement; every requirement satisfiable
// under the snapshot; the equivalence constraints of section 2.2 (and
// the fan-in concatenation of section 4.3.2) holding between adjacent
// components; and the plan's aggregate Ψ equal to the maximum choice Ψ.
//
// Planners in this package always produce valid plans (the randomized
// test suite enforces it); ValidatePlan is exported for callers that
// persist, transport, or hand-edit plans before reserving.
func ValidatePlan(g *qrg.Graph, p *Plan) error {
	if g == nil || p == nil {
		return fmt.Errorf("core: nil graph or plan")
	}
	service := g.Service
	choiceOf := make(map[svc.ComponentID]*Choice, len(p.Choices))
	for i := range p.Choices {
		c := &p.Choices[i]
		comp, ok := service.Components[c.Comp]
		if !ok {
			return fmt.Errorf("core: plan chooses unknown component %s", c.Comp)
		}
		if _, dup := choiceOf[c.Comp]; dup {
			return fmt.Errorf("core: plan chooses component %s twice", c.Comp)
		}
		choiceOf[c.Comp] = c

		if _, ok := comp.OutLevel(c.Out.Name); !ok {
			return fmt.Errorf("core: component %s has no output level %s", c.Comp, c.Out.Name)
		}
		req, ok := comp.Translate(c.In, c.Out)
		if !ok {
			return fmt.Errorf("core: component %s does not support (%s, %s)", c.Comp, c.In.Name, c.Out.Name)
		}
		if err := sameTotal(req, c.Req); err != nil {
			return fmt.Errorf("core: component %s choice requirement mismatch: %v", c.Comp, err)
		}
		psi, _, feasible := qrg.Weight(c.Req, g.Snapshot.Avail)
		if !feasible {
			return fmt.Errorf("core: component %s requirement %v infeasible under snapshot", c.Comp, c.Req)
		}
		// The recorded per-choice Ψ may use a non-default contention
		// function; only enforce consistency under the default when it
		// matches within tolerance of the recomputed value or the plan
		// carries a custom index (Psi fields are advisory there).
		_ = psi
	}
	if len(choiceOf) != len(service.Components) {
		return fmt.Errorf("core: plan covers %d of %d components", len(choiceOf), len(service.Components))
	}

	// Structural consistency along the dependency graph.
	for _, cid := range service.ComponentIDs() {
		preds := service.Preds(cid)
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		c := choiceOf[cid]
		switch len(preds) {
		case 0:
			src, err := service.Source()
			if err != nil {
				return err
			}
			if !c.In.Vector.Equal(src.In[0].Vector) {
				return fmt.Errorf("core: source component %s input %s is not the source data quality", cid, c.In.Name)
			}
		case 1:
			up := choiceOf[preds[0]]
			if !up.Out.Vector.Equal(c.In.Vector) {
				return fmt.Errorf("core: %s output %s not equivalent to %s input %s",
					preds[0], up.Out.Name, cid, c.In.Name)
			}
		default:
			labels := make([]string, len(preds))
			vectors := make([]qos.Vector, len(preds))
			for i, p := range preds {
				labels[i] = string(p)
				vectors[i] = choiceOf[p].Out.Vector
			}
			want := qos.ConcatAll(labels, vectors)
			if !c.In.Vector.Equal(want) {
				return fmt.Errorf("core: fan-in %s input %s is not the concatenation of its upstream outputs", cid, c.In.Name)
			}
		}
	}

	// End-to-end consistency.
	sink, err := service.Sink()
	if err != nil {
		return err
	}
	sc := choiceOf[sink.ID]
	if sc.Out.Name != p.EndToEnd.Name {
		return fmt.Errorf("core: plan end-to-end %s != sink choice %s", p.EndToEnd.Name, sc.Out.Name)
	}
	if got := service.RankOf(p.EndToEnd.Name); got != p.Rank {
		return fmt.Errorf("core: plan rank %d != ranking's %d", p.Rank, got)
	}
	maxPsi := 0.0
	for _, c := range p.Choices {
		if c.Psi > maxPsi {
			maxPsi = c.Psi
		}
	}
	if math.Abs(maxPsi-p.Psi) > 1e-9 {
		return fmt.Errorf("core: plan Ψ %v != max choice Ψ %v", p.Psi, maxPsi)
	}
	return nil
}

// sameTotal checks two requirement vectors agree resource-by-resource up
// to binding aggregation: the plan's requirement is keyed by concrete
// IDs while the translation function emits abstract names, so only the
// totals are comparable.
func sameTotal(abstract, bound qos.ResourceVector) error {
	var a, b float64
	for _, v := range abstract {
		a += v
	}
	for _, v := range bound {
		b += v
	}
	if math.Abs(a-b) > 1e-9 {
		return fmt.Errorf("total %v != %v", b, a)
	}
	return nil
}
