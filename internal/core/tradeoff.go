package core

import (
	"qosres/internal/qrg"
)

// Tradeoff is the basic algorithm extended with the "QoS - success rate"
// trade-off policy of section 4.3.1. Let s0 be the sink representing the
// highest reachable end-to-end QoS, with bottleneck contention index
// ψ_s0 and bottleneck availability change index α_s0:
//
//   - if α_s0 >= 1 (availability trend up or unchanged), s0 is selected
//     exactly as in the basic algorithm;
//   - if α_s0 < 1 (trend down), the policy instead selects the highest
//     ranked sink s with ψ_s <= α_s0 · ψ_s0, lowering the bottleneck
//     contention by the ratio 1-α_s0.
//
// The paper leaves the empty case unspecified; when no reachable sink
// satisfies the inequality, this implementation falls back to the
// reachable sink with the smallest ψ (best rank on ties), the closest
// admissible interpretation of "lower the bottleneck contention".
type Tradeoff struct{}

// Name implements Planner.
func (Tradeoff) Name() string { return "tradeoff" }

// Plan implements Planner.
func (Tradeoff) Plan(g *qrg.Graph) (*Plan, error) {
	if !g.Service.IsChain() {
		// The tradeoff policy composes with the DAG heuristic by applying
		// the same sink-selection rule to the two-pass results.
		return planDAG(g, chooseTradeoffSink)
	}
	s := maxPlusDijkstra(g)
	defer s.release()
	sinks := reachableSinks(g, s)
	if len(sinks) == 0 {
		return nil, ErrInfeasible
	}
	chosen := chooseTradeoffSink(sinks)
	nodes, edges := s.backtrack(chosen.sink.Node)
	p, err := planFromPath(g, nodes, edges)
	if err != nil {
		return nil, err
	}
	p.Alpha = chosen.alpha
	return p, nil
}

// chooseTradeoffSink applies the section 4.3.1 policy to the reachable
// sinks (ordered best-rank-first).
func chooseTradeoffSink(sinks []sinkSummary) sinkSummary {
	s0 := sinks[0]
	if s0.alpha >= 1.0 {
		return s0
	}
	budget := s0.alpha * s0.psi
	for _, s := range sinks {
		if s.psi <= budget {
			return s
		}
	}
	// Fallback: no sink fits the contention budget; take the least
	// contended reachable sink (first in rank order on ψ ties).
	best := sinks[0]
	for _, s := range sinks[1:] {
		if s.psi < best.psi {
			best = s
		}
	}
	return best
}
