package core

import (
	"errors"
	"math"
	"testing"

	"qosres/internal/qos"
	"qosres/internal/qrg"
	"qosres/internal/workload"
)

// videoGraph builds the QRG of the paper's figure 4/5 worked example.
func videoGraph(t *testing.T) *qrg.Graph {
	t.Helper()
	g, err := qrg.Build(workload.VideoService(), workload.VideoBinding(), workload.VideoSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBasicReproducesFigure5(t *testing.T) {
	g := videoGraph(t)

	// The top-ranked end-to-end level Qn is infeasible under the
	// snapshot, so it must not even appear as a sink node.
	for _, s := range g.Sinks {
		if g.Nodes[s.Node].Level.Name == "Qn" {
			t.Fatal("infeasible level Qn should not be a sink node")
		}
	}

	p, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.EndToEnd.Name != "Qo" {
		t.Fatalf("selected end-to-end level = %s, want Qo", p.EndToEnd.Name)
	}
	if p.Rank != 5 {
		t.Fatalf("rank = %d, want 5 (second best of six)", p.Rank)
	}
	if math.Abs(p.Psi-0.16) > 1e-9 {
		t.Fatalf("bottleneck contention = %v, want 0.16", p.Psi)
	}
	// The figure-5 tie-break: Qo is reachable at 0.16 both via Qk
	// (incoming weight 0.14) and via Ql (incoming weight 0.16); the rule
	// min(b, c) selects the Qk predecessor, i.e. the path through Qh.
	if p.PathLevels != "Qa-Qc-Qf-Qh-Qk-Qo" {
		t.Fatalf("selected path = %s, want Qa-Qc-Qf-Qh-Qk-Qo", p.PathLevels)
	}
}

func TestBasicPlanChoicesCoverEveryComponent(t *testing.T) {
	g := videoGraph(t)
	p, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Choices) != 3 {
		t.Fatalf("choices = %d, want 3", len(p.Choices))
	}
	want := []string{"VideoSender", "ObjectTracker", "VideoPlayer"}
	for i, c := range p.Choices {
		if string(c.Comp) != want[i] {
			t.Errorf("choice %d component = %s, want %s", i, c.Comp, want[i])
		}
		if len(c.Req) == 0 {
			t.Errorf("choice %d has empty requirement", i)
		}
		if c.Psi < 0 || c.Psi > 1 {
			t.Errorf("choice %d psi = %v out of (0,1]", i, c.Psi)
		}
	}
}

func TestPlanRequirementAccumulates(t *testing.T) {
	g := videoGraph(t)
	p, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	req := p.Requirement()
	// Every amount must be positive and satisfiable under the snapshot.
	for r, amt := range req {
		if amt <= 0 {
			t.Errorf("requirement %s = %v", r, amt)
		}
		if amt > workload.VideoAvail {
			t.Errorf("requirement %s = %v exceeds availability", r, amt)
		}
	}
	if len(req) == 0 {
		t.Fatal("empty plan requirement")
	}
}

func TestBasicPsiMatchesMaxChoicePsi(t *testing.T) {
	g := videoGraph(t)
	p, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	max := 0.0
	for _, c := range p.Choices {
		if c.Psi > max {
			max = c.Psi
		}
	}
	if p.Psi != max {
		t.Fatalf("plan psi %v != max choice psi %v", p.Psi, max)
	}
}

func TestBasicIsOptimalOnVideoExample(t *testing.T) {
	g := videoGraph(t)
	basic, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (Exhaustive{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if basic.Rank != exact.Rank {
		t.Fatalf("basic rank %d != exhaustive rank %d", basic.Rank, exact.Rank)
	}
	if math.Abs(basic.Psi-exact.Psi) > 1e-12 {
		t.Fatalf("basic psi %v != exhaustive psi %v", basic.Psi, exact.Psi)
	}
}

func TestInfeasibleWhenNothingReachable(t *testing.T) {
	// Zero availability: no translation edge survives.
	snap := workload.VideoSnapshot()
	for r := range snap.Avail {
		snap.Avail[r] = 0
	}
	g, err := qrg.Build(workload.VideoService(), workload.VideoBinding(), snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, planner := range []Planner{Basic{}, Tradeoff{}, NewRandom(1)} {
		if _, err := planner.Plan(g); !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: err = %v, want ErrInfeasible", planner.Name(), err)
		}
	}
}

func TestRandomAlwaysReachesBestSink(t *testing.T) {
	g := videoGraph(t)
	r := NewRandom(7)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		p, err := r.Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		if p.EndToEnd.Name != "Qo" {
			t.Fatalf("random planner chose %s, want the best reachable sink Qo", p.EndToEnd.Name)
		}
		seen[p.PathLevels] = true
	}
	// Both Qa-..-Qk-Qo and Qa-..-Ql-Qo style paths exist; a uniform
	// sampler must find more than one.
	if len(seen) < 2 {
		t.Fatalf("random planner only ever selected %v", seen)
	}
}

func TestRandomIsUniformOverPaths(t *testing.T) {
	g := videoGraph(t)
	counts := pathCounts(g)
	// Count the distinct source->Qo paths analytically.
	var total float64
	for _, s := range g.Sinks {
		if g.Nodes[s.Node].Level.Name == "Qo" {
			total = counts[s.Node]
		}
	}
	if total < 2 {
		t.Fatalf("expected at least 2 paths to Qo, have %v", total)
	}
	r := NewRandom(99)
	hist := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		p, err := r.Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		hist[p.PathLevels]++
	}
	if len(hist) != int(total) {
		t.Fatalf("sampled %d distinct paths, want %v", len(hist), total)
	}
	want := float64(n) / total
	for path, got := range hist {
		if math.Abs(float64(got)-want) > 5*math.Sqrt(want) {
			t.Errorf("path %s sampled %d times, want ~%.0f", path, got, want)
		}
	}
}

func TestRandomRejectsDAGServices(t *testing.T) {
	g, err := qrg.Build(workload.DagService(), workload.DagBinding(), workload.DagSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRandom(1).Plan(g); err == nil {
		t.Fatal("random planner must reject DAG services")
	}
}

func TestRandomRequiresRNG(t *testing.T) {
	g := videoGraph(t)
	if _, err := (&Random{}).Plan(g); err == nil {
		t.Fatal("expected error without RNG")
	}
}

func TestTradeoffEqualsBasicWhenTrendUp(t *testing.T) {
	// All alphas are 1.0 in the canonical snapshot, so tradeoff must
	// behave exactly like basic.
	g := videoGraph(t)
	pb, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := (Tradeoff{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if pb.EndToEnd.Name != pt.EndToEnd.Name || pb.PathLevels != pt.PathLevels {
		t.Fatalf("tradeoff diverged from basic with alpha=1: %s vs %s", pt.PathLevels, pb.PathLevels)
	}
}

func TestTradeoffDowngradesWhenTrendDown(t *testing.T) {
	snap := workload.VideoSnapshot()
	// The basic plan's bottleneck resource is the tracking proxy CPU
	// (edge Qf->Qh at 0.16). Mark its availability as trending sharply
	// down.
	snap.Alpha[workload.VideoResProxyCPU] = 0.5
	g, err := qrg.Build(workload.VideoService(), workload.VideoBinding(), snap)
	if err != nil {
		t.Fatal(err)
	}
	p, err := (Tradeoff{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	// Budget = alpha * psi_s0 = 0.5*0.16 = 0.08. Only sink Qs (psi 0.10
	// via Qa-Qd-Qg-Qj-Qm-Qs... with max(0.10, 0.08)=0.10) exceeds it;
	// sinks with psi <= 0.08 don't exist, so the fallback picks the
	// least-contended sink.
	basic, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rank >= basic.Rank {
		t.Fatalf("tradeoff rank %d should be below basic rank %d under a downtrend", p.Rank, basic.Rank)
	}
	if p.Psi >= basic.Psi {
		t.Fatalf("tradeoff psi %v should be below basic psi %v", p.Psi, basic.Psi)
	}
}

func TestTradeoffPolicyChoosesBudgetedSink(t *testing.T) {
	sinks := []sinkSummary{
		{sink: qrg.Sink{Rank: 3}, psi: 0.5, alpha: 0.8},
		{sink: qrg.Sink{Rank: 2}, psi: 0.45},
		{sink: qrg.Sink{Rank: 1}, psi: 0.3},
	}
	got := chooseTradeoffSink(sinks)
	// Budget = 0.8*0.5 = 0.4; the first sink with psi <= 0.4 is rank 1.
	if got.sink.Rank != 1 {
		t.Fatalf("chose rank %d, want 1", got.sink.Rank)
	}
}

func TestTradeoffPolicyKeepsBestWhenTrendUp(t *testing.T) {
	sinks := []sinkSummary{
		{sink: qrg.Sink{Rank: 3}, psi: 0.9, alpha: 1.2},
		{sink: qrg.Sink{Rank: 2}, psi: 0.1},
	}
	if got := chooseTradeoffSink(sinks); got.sink.Rank != 3 {
		t.Fatalf("chose rank %d, want 3", got.sink.Rank)
	}
}

func TestTradeoffPolicyFallbackMinPsi(t *testing.T) {
	sinks := []sinkSummary{
		{sink: qrg.Sink{Rank: 3}, psi: 0.5, alpha: 0.1}, // budget 0.05
		{sink: qrg.Sink{Rank: 2}, psi: 0.6},
		{sink: qrg.Sink{Rank: 1}, psi: 0.2},
	}
	if got := chooseTradeoffSink(sinks); got.sink.Rank != 1 || got.psi != 0.2 {
		t.Fatalf("fallback chose rank %d psi %v, want rank 1 psi 0.2", got.sink.Rank, got.psi)
	}
}

func TestTwoPassReproducesFigure8(t *testing.T) {
	g, err := qrg.Build(workload.DagService(), workload.DagBinding(), workload.DagSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	p, err := (TwoPass{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.EndToEnd.Name != "Qv" {
		t.Fatalf("end-to-end = %s, want Qv", p.EndToEnd.Name)
	}
	byComp := map[string][2]string{}
	for _, c := range p.Choices {
		byComp[string(c.Comp)] = [2]string{c.In.Name, c.Out.Name}
	}
	// The figure-8 resolution: the fan-out component c2 converges on Qi
	// (highest downstream Ψe 0.30) rather than Qh (0.35).
	if byComp["c2"][1] != "Qi" {
		t.Fatalf("c2 output = %s, want Qi (the paper's resolution)", byComp["c2"][1])
	}
	if byComp["c3"] != [2]string{"Qk", "Qn"} {
		t.Fatalf("c3 selection = %v, want [Qk Qn]", byComp["c3"])
	}
	if byComp["c4"] != [2]string{"Qm", "Qp"} {
		t.Fatalf("c4 selection = %v, want [Qm Qp]", byComp["c4"])
	}
	if math.Abs(p.Psi-0.30) > 1e-9 {
		t.Fatalf("Ψ_G = %v, want 0.30", p.Psi)
	}
	if len(p.Choices) != 5 {
		t.Fatalf("choices = %d, want 5", len(p.Choices))
	}
}

func TestBasicDelegatesToTwoPassForDAG(t *testing.T) {
	g, err := qrg.Build(workload.DagService(), workload.DagBinding(), workload.DagSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	p, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := (TwoPass{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.EndToEnd.Name != tp.EndToEnd.Name || p.Psi != tp.Psi {
		t.Fatalf("basic (%s, %v) != twopass (%s, %v)", p.EndToEnd.Name, p.Psi, tp.EndToEnd.Name, tp.Psi)
	}
}

func TestExhaustiveMatchesTwoPassOnFigure8(t *testing.T) {
	g, err := qrg.Build(workload.DagService(), workload.DagBinding(), workload.DagSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	heur, err := (TwoPass{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := (Exhaustive{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Rank != heur.Rank {
		t.Fatalf("exhaustive rank %d != twopass rank %d", exact.Rank, heur.Rank)
	}
	if exact.Psi > heur.Psi+1e-12 {
		t.Fatalf("exhaustive psi %v worse than heuristic %v", exact.Psi, heur.Psi)
	}
	// On this instance the local resolution is in fact globally optimal.
	if math.Abs(exact.Psi-heur.Psi) > 1e-12 {
		t.Fatalf("exhaustive psi %v, twopass psi %v: expected equal on figure-8", exact.Psi, heur.Psi)
	}
}

func TestExhaustiveOnChainMatchesBasic(t *testing.T) {
	g := videoGraph(t)
	b, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	e, err := (Exhaustive{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if b.Rank != e.Rank || math.Abs(b.Psi-e.Psi) > 1e-12 {
		t.Fatalf("basic (%d, %v) != exhaustive (%d, %v)", b.Rank, b.Psi, e.Rank, e.Psi)
	}
}

func TestTradeoffOnDAGDowngrades(t *testing.T) {
	snap := workload.DagSnapshot()
	// Make every resource trend down hard; the bottleneck of the best
	// plan then forces a downgrade to the lower sink.
	for r := range snap.Alpha {
		snap.Alpha[r] = 0.4
	}
	g, err := qrg.Build(workload.DagService(), workload.DagBinding(), snap)
	if err != nil {
		t.Fatal(err)
	}
	p, err := (Tradeoff{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	// Budget = 0.4 * 0.30 = 0.12; sink Qw has pass-I value 0.15 > 0.12,
	// so the fallback picks the smaller-psi sink: Qw at 0.15.
	if p.EndToEnd.Name != "Qw" {
		t.Fatalf("end-to-end = %s, want Qw", p.EndToEnd.Name)
	}
}

func TestPlannersAreDeterministic(t *testing.T) {
	g := videoGraph(t)
	first, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p, err := (Basic{}).Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		if p.PathLevels != first.PathLevels || p.Psi != first.Psi {
			t.Fatalf("run %d diverged: %s/%v vs %s/%v", i, p.PathLevels, p.Psi, first.PathLevels, first.Psi)
		}
	}
}

func TestPlannerNames(t *testing.T) {
	names := map[string]Planner{
		"basic":      Basic{},
		"tradeoff":   Tradeoff{},
		"twopass":    TwoPass{},
		"exhaustive": Exhaustive{},
		"random":     NewRandom(1),
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("Name() = %q, want %q", p.Name(), want)
		}
	}
}

func TestWeightHelper(t *testing.T) {
	req := qos.ResourceVector{"a": 10, "b": 50}
	avail := qos.ResourceVector{"a": 100, "b": 100}
	psi, bott, ok := qrg.Weight(req, avail)
	if !ok || psi != 0.5 || bott != "b" {
		t.Fatalf("Weight = %v %q %v", psi, bott, ok)
	}
	_, _, ok = qrg.Weight(qos.ResourceVector{"a": 101}, avail)
	if ok {
		t.Fatal("over-requirement must be infeasible")
	}
	psi, _, ok = qrg.Weight(qos.ResourceVector{}, avail)
	if !ok || psi != 0 {
		t.Fatal("empty requirement must be feasible at zero contention")
	}
}

func TestNoTieBreakStillOptimalButDifferentPath(t *testing.T) {
	// Disabling the tie-break must not change the achieved rank or ψ
	// (both paths share the bottleneck value); on the figure-5 instance
	// it changes which predecessor of Qo is kept.
	g := videoGraph(t)
	with, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	without, err := (Basic{NoTieBreak: true}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	if with.Rank != without.Rank || with.Psi != without.Psi {
		t.Fatalf("tie-break changed optimality: (%d, %v) vs (%d, %v)",
			with.Rank, with.Psi, without.Rank, without.Psi)
	}
	if with.PathLevels == without.PathLevels {
		t.Fatalf("figure-5 tie not exercised: both chose %s", with.PathLevels)
	}
}
