package core

import (
	"sort"

	"qosres/internal/qrg"
	"qosres/internal/svc"
)

// PlanCount summarizes the feasible reservation plans a QRG admits at
// one end-to-end QoS level.
type PlanCount struct {
	Level string
	Rank  int
	// Plans is the number of distinct feasible plans reaching the level:
	// source-to-sink paths for chain services, embedded graphs for DAG
	// services.
	Plans float64
}

// FeasiblePlanCounts counts, per end-to-end QoS level (best first), how
// many feasible reservation plans the QRG admits — the population the
// algorithm's "selected from multiple feasible reservation plans" claim
// quantifies over. Chain services count paths by dynamic programming;
// DAG services count embedded graphs by enumeration (exponential; small
// services only).
func FeasiblePlanCounts(g *qrg.Graph) []PlanCount {
	if g.Service.IsChain() {
		return chainPlanCounts(g)
	}
	return dagPlanCounts(g)
}

func chainPlanCounts(g *qrg.Graph) []PlanCount {
	counts := pathCounts(g)
	out := make([]PlanCount, 0, len(g.Sinks))
	for _, s := range g.Sinks {
		out = append(out, PlanCount{
			Level: g.Nodes[s.Node].Level.Name,
			Rank:  s.Rank,
			Plans: counts[s.Node],
		})
	}
	return out
}

func dagPlanCounts(g *qrg.Graph) []PlanCount {
	order, err := g.Service.TopoOrder()
	if err != nil {
		return nil
	}
	byLevel := map[string]float64{}
	selOut := make(map[svc.ComponentID]int, len(order))

	var recurse func(i int)
	recurse = func(i int) {
		if i == len(order) {
			sinkOut := selOut[order[len(order)-1]]
			byLevel[g.Nodes[sinkOut].Level.Name]++
			return
		}
		cid := order[i]
		in := embeddedInNode(g, cid, selOut)
		if in < 0 {
			return
		}
		seen := map[int]bool{}
		for _, eid := range g.OutEdges[in] {
			e := g.Edges[eid]
			if e.Kind != qrg.Translation || seen[e.To] {
				continue
			}
			seen[e.To] = true
			selOut[cid] = e.To
			recurse(i + 1)
		}
		delete(selOut, cid)
	}
	recurse(0)

	out := make([]PlanCount, 0, len(g.Sinks))
	for _, s := range g.Sinks {
		name := g.Nodes[s.Node].Level.Name
		out = append(out, PlanCount{Level: name, Rank: s.Rank, Plans: byLevel[name]})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Rank > out[j].Rank })
	return out
}
