package core

import (
	"strings"
	"testing"

	"qosres/internal/qrg"
	"qosres/internal/workload"
)

func TestValidatePlanAcceptsPlannerOutput(t *testing.T) {
	g := videoGraph(t)
	for _, p := range []Planner{Basic{}, Tradeoff{}, NewRandom(3), Exhaustive{}} {
		plan, err := p.Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePlan(g, plan); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestValidatePlanAcceptsDAGPlans(t *testing.T) {
	g, err := qrg.Build(workload.DagService(), workload.DagBinding(), workload.DagSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Planner{TwoPass{}, Exhaustive{}} {
		plan, err := p.Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidatePlan(g, plan); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestValidatePlanDetectsCorruption(t *testing.T) {
	g := videoGraph(t)
	fresh := func() *Plan {
		p, err := (Basic{}).Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string]struct {
		mutate func(*Plan)
		want   string
	}{
		"duplicate component": {
			func(p *Plan) { p.Choices = append(p.Choices, p.Choices[0]) },
			"twice",
		},
		"missing component": {
			func(p *Plan) { p.Choices = p.Choices[:2]; p.EndToEnd = p.Choices[1].Out; p.Rank = 0 },
			"covers",
		},
		"unknown component": {
			func(p *Plan) { p.Choices[0].Comp = "ghost" },
			"unknown component",
		},
		"unsupported pair": {
			func(p *Plan) { p.Choices[1].In, p.Choices[1].Out = p.Choices[1].Out, p.Choices[1].In },
			"",
		},
		"tampered requirement": {
			func(p *Plan) {
				for r := range p.Choices[0].Req {
					p.Choices[0].Req[r] *= 3
				}
			},
			"requirement",
		},
		"wrong end-to-end": {
			func(p *Plan) { p.EndToEnd.Name = "Qq" },
			"end-to-end",
		},
		"wrong rank": {
			func(p *Plan) { p.Rank = 99 },
			"rank",
		},
		"wrong psi": {
			func(p *Plan) { p.Psi = 0.999 },
			"Ψ",
		},
	}
	for name, tc := range cases {
		p := fresh()
		tc.mutate(p)
		err := ValidatePlan(g, p)
		if err == nil {
			t.Errorf("%s: corruption accepted", name)
			continue
		}
		if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", name, err, tc.want)
		}
	}
}

func TestValidatePlanNilArgs(t *testing.T) {
	if err := ValidatePlan(nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestValidatePlanInfeasibleUnderNewSnapshot(t *testing.T) {
	// A plan computed under a generous snapshot must fail validation
	// against a drained one: the guard a caller needs before reserving a
	// stored plan.
	g := videoGraph(t)
	plan, err := (Basic{}).Plan(g)
	if err != nil {
		t.Fatal(err)
	}
	drained := workload.VideoSnapshot()
	for r := range drained.Avail {
		drained.Avail[r] = 1
	}
	g2, err := qrg.Build(workload.VideoService(), workload.VideoBinding(), drained)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePlan(g2, plan); err == nil {
		t.Fatal("stale plan accepted against drained snapshot")
	}
}

func TestFeasiblePlanCountsChain(t *testing.T) {
	g := videoGraph(t)
	counts := FeasiblePlanCounts(g)
	byLevel := map[string]PlanCount{}
	for _, c := range counts {
		byLevel[c.Level] = c
	}
	// Hand-enumerated from the figure-4/5 instance: Qo is reachable via
	// Qk (2 upstream paths) and Ql (2 upstream paths).
	if got := byLevel["Qo"].Plans; got != 4 {
		t.Fatalf("plans to Qo = %v, want 4", got)
	}
	if got := byLevel["Qp"].Plans; got != 2 {
		t.Fatalf("plans to Qp = %v, want 2", got)
	}
	if got := byLevel["Qq"].Plans; got != 1 {
		t.Fatalf("plans to Qq = %v, want 1", got)
	}
	// Counts must agree with the uniform sampler's support.
	r := NewRandom(3)
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		p, err := r.Plan(g)
		if err != nil {
			t.Fatal(err)
		}
		seen[p.PathLevels] = true
	}
	if float64(len(seen)) != byLevel["Qo"].Plans {
		t.Fatalf("sampler found %d paths to the best sink, counts say %v", len(seen), byLevel["Qo"].Plans)
	}
}

func TestFeasiblePlanCountsDAG(t *testing.T) {
	g, err := qrg.Build(workload.DagService(), workload.DagBinding(), workload.DagSnapshot())
	if err != nil {
		t.Fatal(err)
	}
	counts := FeasiblePlanCounts(g)
	if len(counts) != 2 {
		t.Fatalf("counts = %+v", counts)
	}
	// 2 (c1) x 2 (c2) upstream choices; one fan-in combo reaches Qv,
	// three reach Qw.
	if counts[0].Level != "Qv" || counts[0].Plans != 4 {
		t.Fatalf("Qv count = %+v", counts[0])
	}
	if counts[1].Level != "Qw" || counts[1].Plans != 12 {
		t.Fatalf("Qw count = %+v", counts[1])
	}
}
