package core

import (
	"math"
	"sync"

	"qosres/internal/qrg"
)

// shortest is the result of the max-plus Dijkstra run over a QRG: for
// each node, the minimum over all source paths of the maximum edge weight
// along the path, plus the predecessor edge realizing it under the
// paper's tie-breaking rule.
type shortest struct {
	g *qrg.Graph
	// noTieBreak disables the paper's min(b, c) predecessor rule (for
	// ablation): the first relaxation achieving a node's value wins.
	noTieBreak bool
	// dist[v] is the bottleneck value of the best source->v path.
	dist []float64
	// predEdge[v] is the edge ID entering v on the best path, -1 at the
	// source and for unreachable nodes.
	predEdge []int
	// inWeight[v] is the weight of predEdge[v], the tie-break key.
	inWeight []float64
	// heap is the binary min-heap of pending relaxations (lazy
	// deletion: stale entries are skipped on pop).
	heap []pqItem
}

// pqItem is a priority-queue entry.
type pqItem struct {
	node int
	dist float64
	tie  float64
}

// pqLess orders relaxations by node value, then incoming edge weight,
// then node ID — a strict total order, so pop order is deterministic.
func pqLess(a, b pqItem) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.tie != b.tie {
		return a.tie < b.tie
	}
	return a.node < b.node
}

// push adds an item, sifting up.
func (s *shortest) push(it pqItem) {
	h := append(s.heap, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !pqLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	s.heap = h
}

// pop removes and returns the minimum item, sifting down.
func (s *shortest) pop() pqItem {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		j := l
		if r := l + 1; r < n && pqLess(h[r], h[l]) {
			j = r
		}
		if !pqLess(h[j], h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	s.heap = h
	return top
}

// shortestPool recycles the per-plan state: the dist/predEdge/inWeight
// arrays and the heap are reused across plans, so a steady-state
// Dijkstra run allocates nothing. Holders must call release() when the
// plan (and anything referencing s.g through it) is assembled.
var shortestPool = sync.Pool{New: func() interface{} { return new(shortest) }}

// maxPlusDijkstra runs Dijkstra's algorithm with "+" redefined as "max"
// (section 4.1.2). The resulting dist of a sink node equals the
// contention index ψ of the bottleneck resource on the selected path.
//
// Tie-breaking follows the paper: when two candidate predecessors yield
// the same node value (max(a,b) == max(a,c)), the predecessor whose edge
// weight is smaller wins (min(b,c)); remaining ties prefer the
// predecessor with the smaller value, then the smaller edge ID, keeping
// the computation fully deterministic.
func maxPlusDijkstra(g *qrg.Graph) *shortest {
	return maxPlusDijkstraOpt(g, false)
}

// maxPlusDijkstraOpt optionally disables the tie-break rule.
func maxPlusDijkstraOpt(g *qrg.Graph, noTieBreak bool) *shortest {
	n := len(g.Nodes)
	s := shortestPool.Get().(*shortest)
	s.g = g
	s.noTieBreak = noTieBreak
	if cap(s.dist) < n {
		s.dist = make([]float64, n)
		s.predEdge = make([]int, n)
		s.inWeight = make([]float64, n)
	}
	s.dist = s.dist[:n]
	s.predEdge = s.predEdge[:n]
	s.inWeight = s.inWeight[:n]
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
		s.predEdge[i] = -1
		s.inWeight[i] = math.Inf(1)
	}
	s.dist[g.Source] = 0
	s.inWeight[g.Source] = 0
	s.heap = s.heap[:0]
	s.push(pqItem{node: g.Source, dist: 0, tie: 0})
	for len(s.heap) > 0 {
		it := s.pop()
		u := it.node
		if it.dist > s.dist[u] || (it.dist == s.dist[u] && it.tie > s.inWeight[u]) {
			continue // stale entry
		}
		for _, eid := range g.OutEdges[u] {
			e := &g.Edges[eid]
			v := e.To
			nd := s.dist[u]
			if e.Weight > nd {
				nd = e.Weight
			}
			if !better(nd, e.Weight, s.dist[u], eid, s, v) {
				continue
			}
			s.dist[v] = nd
			s.predEdge[v] = eid
			s.inWeight[v] = e.Weight
			s.push(pqItem{node: v, dist: nd, tie: e.Weight})
		}
	}
	return s
}

// release returns the run's buffers to the pool. The shortest value
// must not be used afterwards.
func (s *shortest) release() {
	s.g = nil
	shortestPool.Put(s)
}

// better reports whether the candidate relaxation (nd via edge eid of
// weight w from a predecessor with value predDist) improves node v under
// the tie-break order.
func better(nd, w, predDist float64, eid int, s *shortest, v int) bool {
	switch {
	case nd < s.dist[v]:
		return true
	case nd > s.dist[v]:
		return false
	}
	if s.noTieBreak {
		// Ablation mode: keep whatever relaxation got there first.
		return false
	}
	// Equal node value: prefer the smaller incoming edge weight
	// (the paper's min(b, c) rule).
	cur := s.inWeight[v]
	if w != cur {
		return w < cur
	}
	// Then the smaller predecessor value.
	var curPred float64
	if s.predEdge[v] >= 0 {
		curPred = s.dist[s.g.Edges[s.predEdge[v]].From]
	}
	if predDist != curPred {
		return predDist < curPred
	}
	// Finally a stable ID order; never replace an equal-quality choice.
	return s.predEdge[v] >= 0 && eid < s.predEdge[v]
}

// reachable reports whether node v was reached.
func (s *shortest) reachable(v int) bool { return !math.IsInf(s.dist[v], 1) }

// backtrack returns the node path and edge path from the source to v.
func (s *shortest) backtrack(v int) (nodes []int, edges []int) {
	for cur := v; ; {
		nodes = append(nodes, cur)
		eid := s.predEdge[cur]
		if eid < 0 {
			break
		}
		edges = append(edges, eid)
		cur = s.g.Edges[eid].From
	}
	reverseInts(nodes)
	reverseInts(edges)
	return nodes, edges
}

// bottleneckEdge returns the translation edge realizing the path's
// bottleneck value (the most downstream one when several attain it).
func (s *shortest) bottleneckEdge(edges []int) (qrg.Edge, bool) {
	best := -1
	bw := -1.0
	for _, eid := range edges {
		e := s.g.Edges[eid]
		if e.Kind != qrg.Translation {
			continue
		}
		if e.Weight >= bw {
			bw = e.Weight
			best = eid
		}
	}
	if best < 0 {
		return qrg.Edge{}, false
	}
	return s.g.Edges[best], true
}

func reverseInts(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
