package core

import (
	"container/heap"
	"math"

	"qosres/internal/qrg"
)

// shortest is the result of the max-plus Dijkstra run over a QRG: for
// each node, the minimum over all source paths of the maximum edge weight
// along the path, plus the predecessor edge realizing it under the
// paper's tie-breaking rule.
type shortest struct {
	g *qrg.Graph
	// noTieBreak disables the paper's min(b, c) predecessor rule (for
	// ablation): the first relaxation achieving a node's value wins.
	noTieBreak bool
	// dist[v] is the bottleneck value of the best source->v path.
	dist []float64
	// predEdge[v] is the edge ID entering v on the best path, -1 at the
	// source and for unreachable nodes.
	predEdge []int
	// inWeight[v] is the weight of predEdge[v], the tie-break key.
	inWeight []float64
}

// pqItem is a priority-queue entry (lazy deletion: stale entries are
// skipped on pop).
type pqItem struct {
	node int
	dist float64
	tie  float64
}

type pq []pqItem

func (q pq) Len() int { return len(q) }
func (q pq) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	if q[i].tie != q[j].tie {
		return q[i].tie < q[j].tie
	}
	return q[i].node < q[j].node
}
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// maxPlusDijkstra runs Dijkstra's algorithm with "+" redefined as "max"
// (section 4.1.2). The resulting dist of a sink node equals the
// contention index ψ of the bottleneck resource on the selected path.
//
// Tie-breaking follows the paper: when two candidate predecessors yield
// the same node value (max(a,b) == max(a,c)), the predecessor whose edge
// weight is smaller wins (min(b,c)); remaining ties prefer the
// predecessor with the smaller value, then the smaller edge ID, keeping
// the computation fully deterministic.
func maxPlusDijkstra(g *qrg.Graph) *shortest {
	return maxPlusDijkstraOpt(g, false)
}

// maxPlusDijkstraOpt optionally disables the tie-break rule.
func maxPlusDijkstraOpt(g *qrg.Graph, noTieBreak bool) *shortest {
	n := len(g.Nodes)
	s := &shortest{
		g:          g,
		noTieBreak: noTieBreak,
		dist:       make([]float64, n),
		predEdge:   make([]int, n),
		inWeight:   make([]float64, n),
	}
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
		s.predEdge[i] = -1
		s.inWeight[i] = math.Inf(1)
	}
	s.dist[g.Source] = 0
	s.inWeight[g.Source] = 0
	q := &pq{{node: g.Source, dist: 0, tie: 0}}
	heap.Init(q)
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if it.dist > s.dist[u] || (it.dist == s.dist[u] && it.tie > s.inWeight[u]) {
			continue // stale entry
		}
		for _, eid := range g.OutEdges[u] {
			e := g.Edges[eid]
			v := e.To
			nd := s.dist[u]
			if e.Weight > nd {
				nd = e.Weight
			}
			if !better(nd, e.Weight, s.dist[u], eid, s, v) {
				continue
			}
			s.dist[v] = nd
			s.predEdge[v] = eid
			s.inWeight[v] = e.Weight
			heap.Push(q, pqItem{node: v, dist: nd, tie: e.Weight})
		}
	}
	return s
}

// better reports whether the candidate relaxation (nd via edge eid of
// weight w from a predecessor with value predDist) improves node v under
// the tie-break order.
func better(nd, w, predDist float64, eid int, s *shortest, v int) bool {
	switch {
	case nd < s.dist[v]:
		return true
	case nd > s.dist[v]:
		return false
	}
	if s.noTieBreak {
		// Ablation mode: keep whatever relaxation got there first.
		return false
	}
	// Equal node value: prefer the smaller incoming edge weight
	// (the paper's min(b, c) rule).
	cur := s.inWeight[v]
	if w != cur {
		return w < cur
	}
	// Then the smaller predecessor value.
	var curPred float64
	if s.predEdge[v] >= 0 {
		curPred = s.dist[s.g.Edges[s.predEdge[v]].From]
	}
	if predDist != curPred {
		return predDist < curPred
	}
	// Finally a stable ID order; never replace an equal-quality choice.
	return s.predEdge[v] >= 0 && eid < s.predEdge[v]
}

// reachable reports whether node v was reached.
func (s *shortest) reachable(v int) bool { return !math.IsInf(s.dist[v], 1) }

// backtrack returns the node path and edge path from the source to v.
func (s *shortest) backtrack(v int) (nodes []int, edges []int) {
	for cur := v; ; {
		nodes = append(nodes, cur)
		eid := s.predEdge[cur]
		if eid < 0 {
			break
		}
		edges = append(edges, eid)
		cur = s.g.Edges[eid].From
	}
	reverseInts(nodes)
	reverseInts(edges)
	return nodes, edges
}

// bottleneckEdge returns the translation edge realizing the path's
// bottleneck value (the most downstream one when several attain it).
func (s *shortest) bottleneckEdge(edges []int) (qrg.Edge, bool) {
	best := -1
	bw := -1.0
	for _, eid := range edges {
		e := s.g.Edges[eid]
		if e.Kind != qrg.Translation {
			continue
		}
		if e.Weight >= bw {
			bw = e.Weight
			best = eid
		}
	}
	if best < 0 {
		return qrg.Edge{}, false
	}
	return s.g.Edges[best], true
}

func reverseInts(xs []int) {
	for i, j := 0, len(xs)-1; i < j; i, j = i+1, j-1 {
		xs[i], xs[j] = xs[j], xs[i]
	}
}
