package core

import (
	"qosres/internal/qrg"
)

// Basic is the paper's basic runtime algorithm (section 4.1): compute the
// max-plus shortest paths over the QRG, pick the highest-ranked reachable
// sink (the highest possible end-to-end QoS under the current
// availability), and return the path to it — the feasible reservation
// plan requiring the lowest percentage of bottleneck resource(s).
//
// For services whose dependency graph is a DAG rather than a chain, Basic
// transparently delegates to the TwoPass heuristic of section 4.3.2.
type Basic struct {
	// NoTieBreak disables the section 4.1.2 predecessor tie-break rule,
	// for ablation studies.
	NoTieBreak bool
}

// Name implements Planner.
func (Basic) Name() string { return "basic" }

// Plan implements Planner.
func (b Basic) Plan(g *qrg.Graph) (*Plan, error) {
	if !g.Service.IsChain() {
		return (TwoPass{}).Plan(g)
	}
	s := maxPlusDijkstraOpt(g, b.NoTieBreak)
	defer s.release()
	for _, sink := range g.Sinks {
		if !s.reachable(sink.Node) {
			continue
		}
		nodes, edges := s.backtrack(sink.Node)
		p, err := planFromPath(g, nodes, edges)
		if err != nil {
			return nil, err
		}
		if be, ok := s.bottleneckEdge(edges); ok {
			p.Alpha = be.Alpha
		}
		return p, nil
	}
	return nil, ErrInfeasible
}

// sinkSummary describes one reachable sink after a max-plus Dijkstra run:
// the value associated with the sink node (ψ of the bottleneck resource
// on the shortest path) and the α of that bottleneck resource, the two
// quantities the tradeoff policy consumes.
type sinkSummary struct {
	sink  qrg.Sink
	psi   float64
	alpha float64
}

// reachableSinks lists the reachable sinks best-rank-first with their ψ
// and bottleneck α.
func reachableSinks(g *qrg.Graph, s *shortest) []sinkSummary {
	var out []sinkSummary
	for _, sink := range g.Sinks {
		if !s.reachable(sink.Node) {
			continue
		}
		_, edges := s.backtrack(sink.Node)
		sum := sinkSummary{sink: sink, psi: s.dist[sink.Node], alpha: 1}
		if be, ok := s.bottleneckEdge(edges); ok {
			sum.alpha = be.Alpha
		}
		out = append(out, sum)
	}
	return out
}
