package qosres_test

import (
	"fmt"
	"log"

	"qosres"
)

// buildExampleService defines a two-component service used by the
// runnable documentation examples.
func buildExampleService() (*qosres.Service, qosres.Binding) {
	hi := qosres.MustVector(qosres.P("rate", 30))
	lo := qosres.MustVector(qosres.P("rate", 15))
	encoder := &qosres.Component{
		ID:  "Encoder",
		In:  []qosres.Level{{Name: "src", Vector: hi}},
		Out: []qosres.Level{{Name: "hi", Vector: hi}, {Name: "lo", Vector: lo}},
		Translate: qosres.TranslationTable{
			"src": {"hi": qosres.ResourceVector{"cpu": 40}, "lo": qosres.ResourceVector{"cpu": 15}},
		}.Func(),
		Resources: []string{"cpu"},
	}
	player := &qosres.Component{
		ID: "Player",
		In: []qosres.Level{{Name: "in-hi", Vector: hi}, {Name: "in-lo", Vector: lo}},
		Out: []qosres.Level{
			{Name: "best", Vector: qosres.MustVector(qosres.P("rate", 30), qosres.P("delay", 1))},
			{Name: "ok", Vector: qosres.MustVector(qosres.P("rate", 15), qosres.P("delay", 2))},
		},
		Translate: qosres.TranslationTable{
			"in-hi": {"best": qosres.ResourceVector{"net": 60}},
			"in-lo": {"best": qosres.ResourceVector{"net": 80}, "ok": qosres.ResourceVector{"net": 25}},
		}.Func(),
		Resources: []string{"net"},
	}
	service, err := qosres.NewService("media",
		[]*qosres.Component{encoder, player},
		[]qosres.ServiceEdge{{From: "Encoder", To: "Player"}},
		[]string{"best", "ok"})
	if err != nil {
		log.Fatal(err)
	}
	return service, qosres.Binding{
		"Encoder": {"cpu": "cpu@server"},
		"Player":  {"net": "net@server"},
	}
}

// Example demonstrates the full reservation flow: model, snapshot, QRG,
// contention-aware plan, atomic multi-resource reservation.
func Example() {
	service, binding := buildExampleService()

	pool := qosres.NewPool(nil)
	pool.AddLocal("cpu", "server", 200)
	pool.AddLocal("net", "server", 100)

	snap, _ := pool.Snapshot(0, []string{"cpu@server", "net@server"})
	g, _ := qosres.BuildQRG(service, binding, snap)
	plan, _ := qosres.NewBasicPlanner().Plan(g)
	fmt.Printf("%s at Ψ=%.2f via %s\n", plan.EndToEnd.Name, plan.Psi, plan.Bottleneck)

	res, _ := pool.ReserveAll(0, plan.Requirement())
	defer res.Release(1)
	net, _ := pool.Get("net@server")
	fmt.Printf("net available: %.0f\n", net.Available())
	// Output:
	// best at Ψ=0.60 via net@server
	// net available: 40
}

// ExampleNewTradeoffPlanner shows the section 4.3.1 policy reacting to a
// falling availability trend on the bottleneck resource.
func ExampleNewTradeoffPlanner() {
	service, binding := buildExampleService()
	snap := &qosres.Snapshot{
		Avail: qosres.ResourceVector{"cpu@server": 200, "net@server": 100},
		Alpha: map[string]float64{"cpu@server": 1.0, "net@server": 0.5}, // net trending down
	}
	g, _ := qosres.BuildQRG(service, binding, snap)
	basic, _ := qosres.NewBasicPlanner().Plan(g)
	tradeoff, _ := qosres.NewTradeoffPlanner().Plan(g)
	fmt.Printf("basic:    %s (Ψ %.2f)\n", basic.EndToEnd.Name, basic.Psi)
	fmt.Printf("tradeoff: %s (Ψ %.2f)\n", tradeoff.EndToEnd.Name, tradeoff.Psi)
	// Output:
	// basic:    best (Ψ 0.60)
	// tradeoff: ok (Ψ 0.25)
}

// ExampleNewAdvanceRegistry books an advance reservation for a future
// window (the section 6 extension).
func ExampleNewAdvanceRegistry() {
	service, binding := buildExampleService()
	reg := qosres.NewAdvanceRegistry()
	reg.Add("cpu@server", 200)
	reg.Add("net@server", 100)

	snap, _ := reg.WindowSnapshot(100, 160, []string{"cpu@server", "net@server"})
	g, _ := qosres.BuildQRG(service, binding, snap)
	plan, _ := qosres.NewBasicPlanner().Plan(g)
	booking, _ := reg.ReserveAll(100, 160, plan.Requirement())
	defer booking.Release()

	book, _ := reg.Get("net@server")
	during, _ := book.AvailableOver(120, 140)
	after, _ := book.AvailableOver(200, 260)
	fmt.Printf("booked %s; net during=%.0f after=%.0f\n", plan.EndToEnd.Name, during, after)
	// Output:
	// booked best; net during=40 after=100
}

// ExampleValidatePlan guards a transported plan against a changed
// snapshot before reserving it.
func ExampleValidatePlan() {
	service, binding := buildExampleService()
	rich := &qosres.Snapshot{
		Avail: qosres.ResourceVector{"cpu@server": 200, "net@server": 100},
		Alpha: map[string]float64{},
	}
	g, _ := qosres.BuildQRG(service, binding, rich)
	plan, _ := qosres.NewBasicPlanner().Plan(g)

	drained := &qosres.Snapshot{
		Avail: qosres.ResourceVector{"cpu@server": 200, "net@server": 10},
		Alpha: map[string]float64{},
	}
	g2, _ := qosres.BuildQRG(service, binding, drained)
	if err := qosres.ValidatePlan(g2, plan); err != nil {
		fmt.Println("stale plan rejected")
	}
	// Output:
	// stale plan rejected
}
