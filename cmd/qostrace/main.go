// Command qostrace reconstructs causal distributed-trace span trees
// from a JSONL event stream (simqos -trace, with -trace-sample or
// -chaos) and prints the analysis: per-root-kind latency quantiles,
// critical-path phase/route attribution, typed-event counts, p99
// outlier exemplars with their critical paths, and the completeness
// counters (orphan spans, rootless and multi-root traces).
//
// Usage:
//
//	qostrace [-input run.jsonl] [-fail-incomplete] [-paths 0]
//
// -input defaults to stdin (also spelled -). With -fail-incomplete the
// command exits 1 when any trace reconstructs incompletely — the CI
// gate behind the chaos trace artifact. With -paths N, the full
// critical path of the N slowest traces is printed after the report.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"qosres/internal/trace"
	"qosres/internal/tracetree"
)

func main() {
	var (
		input          = flag.String("input", "-", "JSONL trace file to analyze (- for stdin)")
		failIncomplete = flag.Bool("fail-incomplete", false, "exit 1 when any trace reconstructs incompletely (orphan spans, rootless or multi-root traces)")
		paths          = flag.Int("paths", 0, "additionally print the critical path of the N slowest traces")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *input != "-" && *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	events, err := trace.ReadJSONL(r)
	if err != nil {
		fatal(err)
	}
	forest := tracetree.FromEvents(events)
	tracetree.Report(os.Stdout, forest)

	if *paths > 0 {
		trees := make([]*tracetree.Tree, 0, len(forest.Trees))
		for _, t := range forest.Trees {
			if t.Root != nil {
				trees = append(trees, t)
			}
		}
		sort.Slice(trees, func(i, j int) bool {
			return trees[i].Root.Duration > trees[j].Root.Duration
		})
		if len(trees) > *paths {
			trees = trees[:*paths]
		}
		fmt.Printf("\nslowest %d critical path(s):\n", len(trees))
		for _, t := range trees {
			fmt.Printf("  %s: %s\n", t.TraceID, tracetree.PathString(t.CriticalPath()))
		}
	}

	if *failIncomplete && !forest.Complete() {
		fmt.Fprintf(os.Stderr, "qostrace: incomplete forest: %d orphan spans, %d rootless, %d multi-root trace(s)\n",
			forest.OrphanSpans, forest.Rootless, forest.MultiRoot)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qostrace:", err)
	os.Exit(1)
}
