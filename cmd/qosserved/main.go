// Command qosserved serves the QoSProxy runtime over HTTP/JSON: session
// establishment, heartbeat and teardown on internal/spec documents,
// plus /metrics, /snapshot and pprof. The reservation books are
// write-ahead-logged, so a restarted daemon pointed at the same -wal
// directory recovers its pre-crash reservations (-recover, on by
// default) instead of forgetting them.
//
// Endpoints:
//
//	GET  /spec            sample a paper-shaped session offer
//	POST /establish       admit a session (empty body: sample one)
//	POST /heartbeat?id=S  renew session S's leases
//	POST /renegotiate     move a session to another level (delta 2PC)
//	POST /teardown?id=S   release session S
//	GET  /metrics         Prometheus exposition
//	GET  /snapshot        JSON metrics snapshot
//	GET  /debug/pprof/    runtime profiles
//
// POST /establish accepts {"mainHost": "H1", "session": {...spec...}};
// the session document's availability snapshot is advisory (the
// three-phase protocol collects live availability over the fabric).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"time"

	"qosres/internal/adapt"
	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/sim"
	"qosres/internal/spec"
	"qosres/internal/topo"
)

// served is the HTTP front end's state: the deployment plus the table
// of live sessions it handed out. The table is in-memory on purpose —
// after a restart the recovered holds are leased-but-unowned, and the
// lease sweep reclaims them unless their clients re-establish. That is
// the amnesia contract: books survive a crash, client handles do not.
type served struct {
	env *sim.ServedEnv

	mu       sync.Mutex
	nextID   int
	sessions map[string]*liveEntry
}

type liveEntry struct {
	session  *sessionHandle
	service  string
	mainHost topo.HostID
}

// sessionHandle narrows *proxy.Session to what the front end needs; it
// keeps main decoupled from the proxy package's surface. The plan is
// read through a closure, not copied: a renegotiation — client-driven
// via /renegotiate or controller-driven under -adapt — changes the
// session's level mid-flight, and the handle must report the level the
// books actually hold.
type sessionHandle struct {
	heartbeat   func() error
	release     func() error
	plan        func() (level string, rank int, psi float64)
	renegotiate func(ctx context.Context, level string) error
}

type establishRequest struct {
	MainHost string        `json:"mainHost"`
	Session  *spec.Session `json:"session"`
}

type establishReply struct {
	ID       string  `json:"id"`
	Service  string  `json:"service"`
	MainHost string  `json:"mainHost"`
	Level    string  `json:"level"`
	Rank     int     `json:"rank"`
	Psi      float64 `json:"psi"`
}

type specReply struct {
	MainHost string        `json:"mainHost"`
	Duration float64       `json:"duration"`
	Session  *spec.Session `json:"session"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *served) handleSpec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	offer, err := s.env.SampleSession()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "sample: %v", err)
		return
	}
	writeJSON(w, specReply{
		MainHost: string(offer.MainHost),
		Duration: float64(offer.Duration),
		Session:  offer.Doc,
	})
}

func (s *served) handleEstablish(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var mainHost topo.HostID
	var doc *spec.Session
	if len(body) == 0 {
		offer, err := s.env.SampleSession()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "sample: %v", err)
			return
		}
		mainHost, doc = offer.MainHost, offer.Doc
	} else {
		var req establishRequest
		if err := json.Unmarshal(body, &req); err != nil {
			httpError(w, http.StatusBadRequest, "parse: %v", err)
			return
		}
		if req.Session == nil || req.MainHost == "" {
			httpError(w, http.StatusBadRequest, "need mainHost and session")
			return
		}
		mainHost, doc = topo.HostID(req.MainHost), req.Session
	}
	ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
	defer cancel()
	sess, err := s.env.Establish(ctx, mainHost, doc)
	if err != nil {
		httpError(w, http.StatusConflict, "establish: %v", err)
		return
	}
	h := &sessionHandle{
		heartbeat: sess.Heartbeat,
		release:   sess.Release,
		plan: func() (string, int, float64) {
			p := sess.CurrentPlan()
			if p == nil {
				return "", 0, 0
			}
			return p.EndToEnd.Name, p.Rank, p.Psi
		},
		renegotiate: func(ctx context.Context, level string) error {
			return s.env.Renegotiate(ctx, sess, level)
		},
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("s-%d", s.nextID)
	s.sessions[id] = &liveEntry{session: h, service: doc.Name, mainHost: mainHost}
	s.mu.Unlock()
	level, rank, psi := h.plan()
	writeJSON(w, establishReply{
		ID:       id,
		Service:  doc.Name,
		MainHost: string(mainHost),
		Level:    level,
		Rank:     rank,
		Psi:      psi,
	})
}

// handleRenegotiate moves an established session to the requested
// end-to-end level through the runtime's delta-reservation path: only
// the requirement difference is negotiated over the fabric, a refused
// upgrade leaves the session untouched at its old level, and the level
// change is WAL-journaled, so the books a -recover restart replays hold
// the renegotiated amounts.
func (s *served) handleRenegotiate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var req spec.RenegotiateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	if req.Session == "" || req.Level == "" {
		httpError(w, http.StatusBadRequest, "need session and level")
		return
	}
	s.mu.Lock()
	e := s.sessions[req.Session]
	s.mu.Unlock()
	if e == nil {
		httpError(w, http.StatusNotFound, "unknown session %s", req.Session)
		return
	}
	_, before, _ := e.session.plan()
	ctx, cancel := context.WithTimeout(r.Context(), 10*time.Second)
	defer cancel()
	if err := e.session.renegotiate(ctx, req.Level); err != nil {
		httpError(w, http.StatusConflict, "renegotiate %s: %v", req.Session, err)
		return
	}
	level, rank, _ := e.session.plan()
	outcome := "unchanged"
	switch {
	case rank > before:
		outcome = "upgraded"
	case rank < before:
		outcome = "downgraded"
	}
	writeJSON(w, spec.RenegotiateReply{
		Session: req.Session,
		Level:   level,
		Rank:    rank,
		Outcome: outcome,
	})
}

// lookup pops nothing: the entry stays live until teardown.
func (s *served) lookup(w http.ResponseWriter, r *http.Request) (string, *liveEntry) {
	id := r.URL.Query().Get("id")
	if id == "" {
		httpError(w, http.StatusBadRequest, "need id")
		return "", nil
	}
	s.mu.Lock()
	e := s.sessions[id]
	s.mu.Unlock()
	if e == nil {
		httpError(w, http.StatusNotFound, "unknown session %s", id)
		return "", nil
	}
	return id, e
}

func (s *served) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	id, e := s.lookup(w, r)
	if e == nil {
		return
	}
	if err := e.session.heartbeat(); err != nil {
		// The lease lapsed (or the host restarted) between heartbeats:
		// the holds are gone, so the handle is dead — drop it.
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		httpError(w, http.StatusGone, "heartbeat %s: %v", id, err)
		return
	}
	writeJSON(w, map[string]string{"id": id, "status": "ok"})
}

func (s *served) handleTeardown(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	id, e := s.lookup(w, r)
	if e == nil {
		return
	}
	s.mu.Lock()
	delete(s.sessions, id)
	s.mu.Unlock()
	if err := e.session.release(); err != nil {
		httpError(w, http.StatusGone, "teardown %s: %v", id, err)
		return
	}
	writeJSON(w, map[string]string{"id": id, "status": "released"})
}

func main() {
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address")
		walDir    = flag.String("wal", "qosserved-wal", "write-ahead-log directory (empty disables durability)")
		recoverFl = flag.Bool("recover", true, "replay an existing WAL on startup")
		seed      = flag.Int64("seed", 1, "environment seed (keep stable across restarts of one deployment)")
		lease     = flag.Float64("lease", 30, "session lease TTL in seconds (0 disables leasing)")
		rate      = flag.Float64("rate", 60, "sampled session mix rate (sessions per 60 TUs)")
		adaptOn   = flag.Bool("adapt", false, "run the mid-session adaptation controller")
		adaptHigh = flag.Float64("adapt-high", 0.85, "utilization at or above which brownout downgrades run")
		adaptLow  = flag.Float64("adapt-low", 0.55, "utilization below which upgrades run")
		adaptTick = flag.Duration("adapt-every", 5*time.Second, "adaptation controller tick interval")
	)
	flag.Parse()

	if *walDir != "" {
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			log.Fatalf("qosserved: %v", err)
		}
	}
	reg := obs.New()
	var policy *adapt.Policy
	if *adaptOn {
		p := adapt.DefaultPolicy()
		p.HighWater = *adaptHigh
		p.LowWater = *adaptLow
		// One cooldown covers a couple of controller ticks so a session
		// settles at a level before it is reconsidered.
		p.Cooldown = broker.Time(2 * adaptTick.Seconds())
		policy = &p
	}
	env, err := sim.NewServedEnv(sim.ServedOptions{
		Seed:     *seed,
		Rate:     *rate,
		LeaseTTL: broker.Time(*lease),
		WALDir:   *walDir,
		Recover:  *recoverFl && *walDir != "",
		Registry: reg,
		Adapt:    policy,
	})
	if err != nil {
		log.Fatalf("qosserved: %v", err)
	}

	s := &served{env: env, sessions: map[string]*liveEntry{}}
	mux := obs.NewMux(reg)
	mux.HandleFunc("/spec", s.handleSpec)
	mux.HandleFunc("/establish", s.handleEstablish)
	mux.HandleFunc("/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("/renegotiate", s.handleRenegotiate)
	mux.HandleFunc("/teardown", s.handleTeardown)

	stop := make(chan struct{})
	var sweeper sync.WaitGroup
	if ctrl := env.Controller(); ctrl != nil {
		sweeper.Add(1)
		go func() {
			defer sweeper.Done()
			tick := time.NewTicker(*adaptTick)
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					actions := ctrl.Tick(context.Background(), env.Clock().Now())
					for _, a := range actions {
						if a.Err != nil {
							log.Printf("qosserved: adapt: renegotiate to %s refused: %v", a.Level, a.Err)
							continue
						}
						log.Printf("qosserved: adapt: session moved %d -> %d (%s)", a.FromRank, a.ToRank, a.Level)
					}
				case <-stop:
					return
				}
			}
		}()
	}
	if *lease > 0 {
		sweeper.Add(1)
		go func() {
			defer sweeper.Done()
			tick := time.NewTicker(time.Duration(*lease * float64(time.Second) / 2))
			defer tick.Stop()
			for {
				select {
				case <-tick.C:
					if n := env.SweepLeases(); n > 0 {
						log.Printf("qosserved: lease sweep reclaimed %d holds", n)
					}
				case <-stop:
					return
				}
			}
		}()
	}

	srv := &http.Server{Addr: *addr, Handler: mux}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()
	log.Printf("qosserved: serving on %s (wal=%q recover=%v lease=%gs)",
		*addr, *walDir, *recoverFl && *walDir != "", *lease)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-done:
		log.Fatalf("qosserved: %v", err)
	case <-sig:
	}
	close(stop)
	sweeper.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
	if err := env.Close(); err != nil {
		log.Printf("qosserved: close: %v", err)
	}
}
