package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/sim"
)

// manualClock lets the test decide what time it is, so lease expiry is
// deterministic instead of wall-clock-raced.
type manualClock struct {
	mu sync.Mutex
	t  broker.Time
}

func (c *manualClock) Now() broker.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) advance(d broker.Time) {
	c.mu.Lock()
	c.t += d
	c.mu.Unlock()
}

// newTestServer builds a serving deployment over dir and fronts it with
// an httptest server wired exactly like main().
func newTestServer(t *testing.T, dir string, recov bool, clk *manualClock) (*served, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.New()
	env, err := sim.NewServedEnv(sim.ServedOptions{
		Seed:     7,
		LeaseTTL: 5,
		WALDir:   dir,
		Recover:  recov,
		Registry: reg,
		Clock:    clk,
	})
	if err != nil {
		t.Fatalf("NewServedEnv: %v", err)
	}
	s := &served{env: env, sessions: map[string]*liveEntry{}}
	mux := obs.NewMux(reg)
	mux.HandleFunc("/spec", s.handleSpec)
	mux.HandleFunc("/establish", s.handleEstablish)
	mux.HandleFunc("/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("/teardown", s.handleTeardown)
	return s, httptest.NewServer(mux), reg
}

func postJSON(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, out
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, out)
	}
	return string(out)
}

// TestServedLifecycle drives the full HTTP session lifecycle: sample a
// spec, establish it explicitly, heartbeat, tear down.
func TestServedLifecycle(t *testing.T) {
	clk := &manualClock{}
	s, srv, _ := newTestServer(t, t.TempDir(), false, clk)
	defer srv.Close()
	defer s.env.Close()

	var offer specReply
	if err := json.Unmarshal([]byte(getBody(t, srv.URL+"/spec")), &offer); err != nil {
		t.Fatalf("parse /spec: %v", err)
	}
	if offer.MainHost == "" || offer.Session == nil || offer.Duration <= 0 {
		t.Fatalf("incomplete offer: %+v", offer)
	}

	body, _ := json.Marshal(establishRequest{MainHost: offer.MainHost, Session: offer.Session})
	code, reply := postJSON(t, srv.URL+"/establish", body)
	if code != http.StatusOK {
		t.Fatalf("establish: status %d: %s", code, reply)
	}
	var est establishReply
	if err := json.Unmarshal(reply, &est); err != nil {
		t.Fatalf("parse establish reply: %v", err)
	}
	if est.ID == "" || est.Level == "" || est.Service != offer.Session.Name {
		t.Fatalf("incomplete establish reply: %+v", est)
	}

	if code, out := postJSON(t, srv.URL+"/heartbeat?id="+est.ID, nil); code != http.StatusOK {
		t.Fatalf("heartbeat: status %d: %s", code, out)
	}
	if code, out := postJSON(t, srv.URL+"/teardown?id="+est.ID, nil); code != http.StatusOK {
		t.Fatalf("teardown: status %d: %s", code, out)
	}
	if code, _ := postJSON(t, srv.URL+"/teardown?id="+est.ID, nil); code != http.StatusNotFound {
		t.Fatalf("double teardown: status %d, want 404", code)
	}

	// Sampled establish: empty body makes the server draw the session.
	code, reply = postJSON(t, srv.URL+"/establish", nil)
	if code != http.StatusOK {
		t.Fatalf("sampled establish: status %d: %s", code, reply)
	}
}

// TestServedRestartRecovery is the crash-amnesia fix exercised over the
// wire: establish sessions, kill the server without teardown, restart a
// new deployment over the same WAL directory, and verify the books were
// replayed — the abandoned holds come back leased, lapse, and are swept
// rather than leaking, while new admissions proceed normally.
func TestServedRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	clk := &manualClock{}

	s1, srv1, _ := newTestServer(t, dir, false, clk)
	var ids []string
	for i := 0; i < 3; i++ {
		code, reply := postJSON(t, srv1.URL+"/establish", nil)
		if code != http.StatusOK {
			t.Fatalf("establish %d: status %d: %s", i, code, reply)
		}
		var est establishReply
		if err := json.Unmarshal(reply, &est); err != nil {
			t.Fatalf("parse establish reply: %v", err)
		}
		ids = append(ids, est.ID)
	}
	metrics := getBody(t, srv1.URL+"/metrics")
	if !strings.Contains(metrics, obs.MetricWALAppends) {
		t.Fatalf("no %s in exposition before restart", obs.MetricWALAppends)
	}
	// Crash: no teardown, no heartbeat — the daemon just goes away.
	srv1.Close()
	if err := s1.env.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Down long enough for every lease (TTL 5) to lapse.
	clk.advance(60)

	s2, srv2, _ := newTestServer(t, dir, true, clk)
	defer srv2.Close()
	defer s2.env.Close()

	metrics = getBody(t, srv2.URL+"/metrics")
	for _, want := range []string{obs.MetricWALReplayRecords, obs.MetricRecoveryLeasesSwept} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("no %s in exposition after recovery; got:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, obs.MetricWALReplayRecords+" 0\n") {
		t.Fatalf("recovery replayed zero records")
	}
	if strings.Contains(metrics, obs.MetricRecoveryLeasesSwept+" 0\n") {
		t.Fatalf("recovery swept zero lapsed leases — pre-crash holds leaked or vanished")
	}

	// The session table did not survive: old handles are gone (the
	// amnesia contract covers books, not client handles)...
	if code, _ := postJSON(t, srv2.URL+"/heartbeat?id="+ids[0], nil); code != http.StatusNotFound {
		t.Fatalf("heartbeat of pre-crash session: status %d, want 404", code)
	}
	// ...and the recovered deployment admits new sessions.
	code, reply := postJSON(t, srv2.URL+"/establish", nil)
	if code != http.StatusOK {
		t.Fatalf("post-recovery establish: status %d: %s", code, reply)
	}
	if n := s2.env.SweepLeases(); n != 0 {
		t.Fatalf("recovery left %d expired holds for the periodic sweep", n)
	}
}
