package main

import (
	"testing"

	"qosres/internal/experiments"
)

func result(rows ...experiments.ReadBenchRow) *experiments.ReadBenchResult {
	return &experiments.ReadBenchResult{Rows: rows}
}

func TestCellLookup(t *testing.T) {
	r := result(
		experiments.ReadBenchRow{Mode: "serialized", Goroutines: 16, SessionsPerSec: 11254},
		experiments.ReadBenchRow{Mode: "batched+readpath", Goroutines: 16, SessionsPerSec: 25361},
	)
	v, err := cell(r, "serialized", 16)
	if err != nil || v != 11254 {
		t.Fatalf("cell(serialized, 16) = %v, %v; want 11254", v, err)
	}
	if _, err := cell(r, "serialized", 32); err == nil {
		t.Fatal("missing goroutine count should error")
	}
	if _, err := cell(result(experiments.ReadBenchRow{Mode: "serialized", Goroutines: 16}), "serialized", 16); err == nil {
		t.Fatal("non-positive sessions/sec should error")
	}
}

func TestRegressionBudget(t *testing.T) {
	// The guard condition used by main: fail when current falls below
	// baseline*(1-maxRegress). 15% budget on an 11254 baseline puts the
	// floor at ~9566 sessions/s.
	baseline, budget := 11254.0, 0.15
	floor := baseline * (1 - budget)
	if !(9500.0 < floor) {
		t.Fatalf("9500 sessions/s should fail the %.0f%% budget (floor %.1f)", 100*budget, floor)
	}
	if 9600.0 < floor {
		t.Fatalf("9600 sessions/s should pass the %.0f%% budget (floor %.1f)", 100*budget, floor)
	}
}
