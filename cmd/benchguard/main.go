// Command benchguard is the CI bench-delta gate for the read-path
// benchmark. It compares a freshly measured BENCH_read.json against
// the committed baseline and fails (exit 1) when the serialized
// sessions/sec at the guarded goroutine count regresses by more than
// the allowed fraction. Only the serialized cell is guarded: it is the
// least noisy mode (no batching rounds, no memo variance) and the
// reference every speedup in the artifact is quoted against.
//
// Usage:
//
//	benchguard -baseline BENCH_read.json -current /tmp/BENCH_read.json
//	           [-mode serialized] [-goroutines 16] [-max-regress 0.15]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"qosres/internal/experiments"
)

func main() {
	var (
		baseline   = flag.String("baseline", "BENCH_read.json", "committed baseline artifact")
		current    = flag.String("current", "", "freshly measured artifact to check")
		mode       = flag.String("mode", "serialized", "benchmark mode to guard")
		goroutines = flag.Int("goroutines", 16, "goroutine count to guard")
		maxRegress = flag.Float64("max-regress", 0.15, "maximum allowed fractional regression")
	)
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -current is required")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fail(err)
	}
	cur, err := load(*current)
	if err != nil {
		fail(err)
	}
	bv, err := cell(base, *mode, *goroutines)
	if err != nil {
		fail(fmt.Errorf("baseline %s: %w", *baseline, err))
	}
	cv, err := cell(cur, *mode, *goroutines)
	if err != nil {
		fail(fmt.Errorf("current %s: %w", *current, err))
	}
	delta := (cv - bv) / bv
	fmt.Printf("benchguard: %s@%dg baseline %.0f sessions/s, current %.0f sessions/s (%+.1f%%), allowed -%.0f%%\n",
		*mode, *goroutines, bv, cv, 100*delta, 100**maxRegress)
	if cv < bv*(1-*maxRegress) {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — %s sessions/sec at %d goroutines regressed beyond the %.0f%% budget\n",
			*mode, *goroutines, 100**maxRegress)
		os.Exit(1)
	}
	fmt.Println("benchguard: OK")
}

func load(path string) (*experiments.ReadBenchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r experiments.ReadBenchResult
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func cell(r *experiments.ReadBenchResult, mode string, g int) (float64, error) {
	for _, row := range r.Rows {
		if row.Mode == mode && row.Goroutines == g {
			if row.SessionsPerSec <= 0 {
				return 0, fmt.Errorf("row %s/%d has non-positive sessions/sec", mode, g)
			}
			return row.SessionsPerSec, nil
		}
	}
	return 0, fmt.Errorf("no row for mode %q at %d goroutines", mode, g)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
