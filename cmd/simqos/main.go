// Command simqos runs one simulation of the paper's reservation-enabled
// environment and prints the key metrics: overall reservation success
// rate, average end-to-end QoS level, the per-class breakdown, and the
// selected-path histograms.
//
// Usage:
//
//	simqos -alg basic -rate 100 -seed 1 [-duration 10800] [-stale 0]
//	       [-scale 4] [-diversity 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"qosres/internal/broker"
	"qosres/internal/sim"
	"qosres/internal/stats"
)

func main() {
	var (
		alg        = flag.String("alg", "basic", "algorithm: basic, tradeoff, or random")
		rate       = flag.Float64("rate", 100, "average session generation rate (sessions per 60 TUs)")
		seed       = flag.Int64("seed", 1, "random seed")
		duration   = flag.Float64("duration", 10800, "simulated time units")
		stale      = flag.Float64("stale", 0, "max availability observation age E (TUs)")
		scale      = flag.Float64("scale", sim.DefaultBaseScale, "base requirement scale")
		diversity  = flag.Float64("diversity", 0, "requirement diversity compression ratio (0 = off, paper fig 13 uses 3)")
		paths      = flag.Bool("paths", false, "print selected-path histograms")
		contention = flag.String("contention", "ratio", "contention index: ratio, headroom, or log")
		useRuntime = flag.Bool("runtime", false, "route sessions through the QoSProxy runtime architecture")
		timeline   = flag.Float64("timeline", 0, "print a success-rate timeline with this window width (TUs)")
	)
	flag.Parse()

	cfg := sim.DefaultConfig(sim.Algorithm(*alg), *rate, *seed)
	cfg.Duration = broker.Time(*duration)
	cfg.StaleE = broker.Time(*stale)
	cfg.Workload.BaseScale = *scale
	cfg.Workload.DiversityRatio = *diversity
	cfg.Contention = *contention
	cfg.UseRuntime = *useRuntime
	cfg.TimelineWindow = *timeline

	res, err := sim.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simqos:", err)
		os.Exit(1)
	}
	m := res.Metrics
	fmt.Printf("algorithm=%s rate=%g/60TU duration=%gTU seed=%d staleE=%g\n",
		cfg.Algorithm, cfg.Rate, float64(cfg.Duration), cfg.Seed, float64(cfg.StaleE))
	fmt.Println(m.Summary())
	fmt.Println()

	tbl := &stats.Table{Header: []string{"class", "sessions", "success", "avg QoS"}}
	for _, c := range stats.Classes() {
		cnt := m.Class(c)
		tbl.AddRow(c.String(),
			fmt.Sprintf("%d", cnt.Attempts),
			fmt.Sprintf("%.1f%%", 100*cnt.SuccessRate()),
			fmt.Sprintf("%.2f", cnt.AvgQoS()))
	}
	fmt.Print(tbl.String())

	fmt.Printf("\nbottleneck resources observed: %d of %d\n",
		len(m.BottleneckCounts), len(res.Capacities))

	if m.Timeline != nil {
		fmt.Printf("\nsuccess-rate timeline (window %g TUs):\n%s", *timeline, m.Timeline.Table())
	}

	if *paths {
		for fam, h := range m.ByFamily {
			fmt.Printf("\nselected paths (%s, %d plans):\n", fam, h.Total)
			for _, p := range h.Paths() {
				fmt.Printf("  %-24s %6.1f%%\n", p, h.Percent(p))
			}
		}
	}
}
