// Command simqos runs one simulation of the paper's reservation-enabled
// environment and prints the key metrics: overall reservation success
// rate, average end-to-end QoS level, the per-class breakdown, the
// selected-path histograms, and the planner stage-latency percentiles.
//
// Usage:
//
//	simqos -alg basic -rate 100 -seed 1 [-duration 10800] [-stale 0]
//	       [-scale 4] [-diversity 0]
//	       [-metrics :9090] [-hold] [-trace run.jsonl] [-spans]
//	       [-trace-sample 0.01]
//	       [-batch 16] [-batch-window 0]
//	       [-chaos [-loss 0.1] [-dup 0.05] [-latency 1ms] [-partition 0.1]
//	        [-deadline 250ms] [-max-inflight 0] [-crash 0.2]]
//	simqos -server http://localhost:8080 [-rate 100] [-for 30s] [-seed 1]
//
// With -batch N (N > 1) plus -runtime or -chaos, concurrent admissions
// are coalesced into group-commit rounds of at most N members: one
// batched prepare/commit exchange per participating host per round, one
// striped-lock sweep per broker. The run ends with a batching summary
// (rounds, members, coalesced admissions, stripe locks amortized).
//
// With -trace-sample, sessions are head-sampled into causal distributed
// trace trees (errored admissions always rescued) exported to the
// -trace JSONL as span_end/span_event lines; reconstruct and analyze
// them with qostrace. Chaos runs always trace at sample 1.0.
//
// With -chaos plus any transport flag, the chaos harness rebases the
// reservation protocol on an unreliable message fabric (loss,
// duplication, delivery delay, fault-walk partitions), bounds every
// establish call and repair sweep by -deadline, and ends the run with a
// transport summary table.
//
// With -chaos -crash P, each fault-walk step additionally crash-restarts
// one host's QoSProxy with probability P: the in-memory proxy is
// dropped, its reservation book is recovered from a per-run write-ahead
// log, and the run's invariants (no over-commit, exact drain, zero
// zombies) are asserted across the restarts.
//
// With -server URL, simqos does not simulate at all: it drives a running
// qosserved instance with open-loop Poisson load over HTTP — sampling
// session offers from GET /spec, establishing them, heartbeating while
// they hold, and tearing them down after their sampled duration — for
// -for of wall-clock time at -rate sessions per 60 seconds.
//
// With -metrics the process serves a live exposition endpoint while the
// simulation runs (and, with -hold, after it finishes):
//
//	/metrics        Prometheus text format 0.0.4
//	/snapshot       the same registry as indented JSON
//	/debug/pprof/   the standard net/http/pprof handlers
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"time"

	"qosres/internal/adapt"
	"qosres/internal/broker"
	"qosres/internal/obs"
	"qosres/internal/sim"
	"qosres/internal/stats"
	"qosres/internal/trace"
)

func main() {
	var (
		alg        = flag.String("alg", "basic", "algorithm: basic, tradeoff, or random")
		rate       = flag.Float64("rate", 100, "average session generation rate (sessions per 60 TUs)")
		seed       = flag.Int64("seed", 1, "random seed")
		duration   = flag.Float64("duration", 10800, "simulated time units")
		stale      = flag.Float64("stale", 0, "max availability observation age E (TUs)")
		scale      = flag.Float64("scale", sim.DefaultBaseScale, "base requirement scale")
		diversity  = flag.Float64("diversity", 0, "requirement diversity compression ratio (0 = off, paper fig 13 uses 3)")
		paths      = flag.Bool("paths", false, "print selected-path histograms")
		contention = flag.String("contention", "ratio", "contention index: ratio, headroom, or log")
		useRuntime = flag.Bool("runtime", false, "route sessions through the QoSProxy runtime architecture")
		tplCache   = flag.Bool("template-cache", true, "serve QRGs from compiled per-(service, binding) templates; false rebuilds every graph from scratch (reference path)")
		snapCache  = flag.Bool("snapshot-cache", false, "serve availability snapshots from the epoch-validated shared cache (direct path; α values lag one epoch on cache hits)")
		planMemo   = flag.Bool("plan-memo", false, "with -runtime or -chaos: memoize plans by (template, planner, epoch vector), skipping planning when the book is unchanged")
		admitRetry = flag.Int("admit-retries", 3, "with -runtime: max replanning retries after a commit-time refusal")
		batch      = flag.Int("batch", 0, "with -runtime or -chaos: coalesce concurrent admissions into group-commit rounds of at most this many members (0 or 1 = serialized commits)")
		batchWin   = flag.Duration("batch-window", 0, "with -batch: extra wall-clock time the collector waits to grow a round (0 = only coalesce naturally concurrent attempts)")
		timeline   = flag.Float64("timeline", 0, "print a success-rate timeline with this window width (TUs)")
		metrics    = flag.String("metrics", "", "serve /metrics, /snapshot and /debug/pprof on this address (e.g. :9090)")
		hold       = flag.Bool("hold", false, "with -metrics: keep serving after the run until interrupted")
		traceOut   = flag.String("trace", "", "write the event trace as JSON lines to this file (- for stdout)")
		spans      = flag.Bool("spans", false, "with -trace: include planner stage span events")
		traceSampl = flag.Float64("trace-sample", 0, "head-sampling probability of distributed trace trees (errored admissions always rescued); retained trees export to -trace as span_end/span_event lines")
		chaos      = flag.Bool("chaos", false, "run the concurrent chaos harness (fault injection, session repair, reservation leases) instead of the deterministic simulation")
		loss       = flag.Float64("loss", 0, "with -chaos: per-delivery probability that a protocol message (or reply) is lost in transit")
		dup        = flag.Float64("dup", 0, "with -chaos: per-delivery probability that a protocol message (or reply) is delivered twice")
		netLatency = flag.Duration("latency", 0, "with -chaos: one-way wall-clock delivery delay of every protocol message")
		partition  = flag.Float64("partition", 0, "with -chaos: per-step probability the fault walk cuts the route between one more host pair (healed by the walk and at the run midpoint)")
		deadline   = flag.Duration("deadline", 0, "with -chaos transport: bound on every establish call and repair sweep (default 250ms when transport chaos is on)")
		maxInFlt   = flag.Int("max-inflight", 0, "with -chaos: bound on concurrently admitted sessions; beyond it calls are shed with ErrOverloaded (0 = unbounded)")
		crashP     = flag.Float64("crash", 0, "with -chaos: per-step probability of crash-restarting one host's QoSProxy, recovered from a per-run write-ahead log")
		surgeP     = flag.Float64("surge", 0, "with -chaos: per-step probability of a surge-load action (external background demand — brownout pressure for -adapt)")
		adaptOn    = flag.Bool("adapt", false, "with -chaos: run the mid-session adaptation controller (brownout/upgrade renegotiations) concurrently with the faults")
		adaptHigh  = flag.Float64("adapt-high", 0.85, "with -adapt: utilization at or above which brownout downgrades run")
		adaptLow   = flag.Float64("adapt-low", 0.55, "with -adapt: utilization below which upgrades run")
		server     = flag.String("server", "", "drive a running qosserved at this base URL with open-loop Poisson load instead of simulating (uses -rate, -for, -seed)")
		serverFor  = flag.Duration("for", 30*time.Second, "with -server: wall-clock length of the load run")
	)
	flag.Parse()

	if *server != "" {
		if err := runServerLoad(*server, *rate, *serverFor, *seed); err != nil {
			fatal(err)
		}
		return
	}

	cfg := sim.DefaultConfig(sim.Algorithm(*alg), *rate, *seed)
	cfg.Duration = broker.Time(*duration)
	cfg.StaleE = broker.Time(*stale)
	cfg.Workload.BaseScale = *scale
	cfg.Workload.DiversityRatio = *diversity
	cfg.Contention = *contention
	cfg.UseRuntime = *useRuntime
	cfg.TemplateCache = *tplCache
	cfg.SnapshotCache = *snapCache
	cfg.PlanMemo = *planMemo
	cfg.MaxAdmitRetries = *admitRetry
	cfg.BatchAdmit = *batch
	cfg.BatchWindow = *batchWin
	cfg.TimelineWindow = *timeline
	cfg.TraceSample = *traceSampl

	reg := obs.New()
	cfg.Obs = reg

	if *traceOut != "" {
		var w *os.File
		if *traceOut == "-" {
			w = os.Stdout
		} else {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		sink := trace.NewJSONL(w)
		defer func() {
			if err := sink.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "simqos: trace:", err)
			}
		}()
		cfg.Tracer = sink
		cfg.TraceSpans = *spans
	}

	if *metrics != "" {
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fatal(err)
		}
		srv := &http.Server{Handler: obs.NewMux(reg)}
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "simqos: serving /metrics, /snapshot and /debug/pprof on %s\n", ln.Addr())
	}

	if *chaos {
		// The chaos harness replaces the deterministic run: concurrent
		// clients churn sessions while a seeded fault walk fails and
		// shrinks resources, the runtime repairs affected sessions, and
		// lease sweeps reclaim what orphaned sessions strand. The harness
		// verifies the over-commit, leak, and drain invariants itself.
		sc := sim.DefaultStressConfig(*seed)
		sc.Config.Algorithm = sim.Algorithm(*alg)
		sc.Config.TemplateCache = *tplCache
		sc.Config.SnapshotCache = *snapCache
		sc.Config.PlanMemo = *planMemo
		sc.Config.MaxAdmitRetries = *admitRetry
		sc.Config.BatchAdmit = *batch
		sc.Config.BatchWindow = *batchWin
		sc.Config.Obs = reg
		// Chaos always traces at sample 1.0 (the harness asserts trace
		// completeness); with -trace the span trees land in the JSONL for
		// qostrace's critical-path analysis.
		sc.Config.Tracer = cfg.Tracer
		sc.Config.TraceSample = cfg.TraceSample
		fc := sim.DefaultFaultsConfig()
		if *loss > 0 || *dup > 0 || *partition > 0 || *netLatency > 0 ||
			*deadline > 0 || *maxInFlt > 0 {
			// Unreliable-messaging mode: rebase the protocol on a fabric
			// that loses/duplicates/delays messages and can be partitioned
			// by the fault walk; every establish and repair sweep is
			// deadline-bounded.
			tc := sim.DefaultTransportConfig()
			tc.Loss = *loss
			tc.Dup = *dup
			tc.Latency = *netLatency
			tc.Deadline = *deadline
			tc.MaxInFlight = *maxInFlt
			fc.Transport = tc
			fc.Random.PartitionProb = *partition
			fc.Random.HealProb = 1.5 * *partition
			fc.Random.MaxPartitions = 1
		}
		// Crash cycles: the harness journals into a per-run temporary WAL
		// directory (FaultsConfig.WALDir stays empty here) and restarts
		// hosts per the walk.
		fc.Random.CrashProb = *crashP
		fc.Random.SurgeProb = *surgeP
		if *adaptOn {
			// Mid-session adaptation: the controller ticks once per
			// injection step; a cooldown a few steps long keeps a session
			// from renegotiating on consecutive ticks.
			p := adapt.DefaultPolicy()
			p.HighWater = *adaptHigh
			p.LowWater = *adaptLow
			p.Cooldown = 3 * fc.StepEvery
			fc.Adapt = &p
		}
		sc.Config.Faults = fc
		cres, err := sim.RunChaos(sc)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("chaos: algorithm=%s seed=%d clients=%d iterations=%d\n",
			sc.Config.Algorithm, sc.Seed, sc.Sessions, sc.Iterations)
		if tc := fc.Transport; tc != nil {
			fmt.Printf("transport: loss=%g dup=%g latency=%v partition=%g deadline=%v max-inflight=%d\n",
				tc.Loss, tc.Dup, tc.Latency, *partition, tc.Deadline, tc.MaxInFlight)
		}
		if *crashP > 0 {
			fmt.Printf("crash: prob=%g (per-run WAL, recovery on every restart)\n", *crashP)
		}
		if ap := fc.Adapt; ap != nil {
			fmt.Printf("adapt: high=%g low=%g cooldown=%g budget=%d surge=%g\n",
				ap.HighWater, ap.LowWater, float64(ap.Cooldown), ap.MaxActionsPerTick, *surgeP)
		}
		fmt.Println(cres)
		printAdmission(reg)
		printBatching(reg)
		printReadPath(reg)
		printFaults(reg)
		printTransport(reg)
		if *metrics != "" && *hold {
			holdMetrics()
		}
		return
	}

	res, err := sim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	m := res.Metrics
	fmt.Printf("algorithm=%s rate=%g/60TU duration=%gTU seed=%d staleE=%g\n",
		cfg.Algorithm, cfg.Rate, float64(cfg.Duration), cfg.Seed, float64(cfg.StaleE))
	fmt.Println(m.Summary())
	fmt.Println()

	tbl := &stats.Table{Header: []string{"class", "sessions", "success", "avg QoS"}}
	for _, c := range stats.Classes() {
		cnt := m.Class(c)
		tbl.AddRow(c.String(),
			fmt.Sprintf("%d", cnt.Attempts),
			fmt.Sprintf("%.1f%%", 100*cnt.SuccessRate()),
			fmt.Sprintf("%.2f", cnt.AvgQoS()))
	}
	fmt.Print(tbl.String())

	fmt.Printf("\nbottleneck resources observed: %d of %d\n",
		len(m.BottleneckCounts), len(res.Capacities))

	printStageLatencies(reg)
	printAdmission(reg)
	printBatching(reg)
	printTemplateCache(reg)
	printReadPath(reg)
	printFaults(reg)
	printUtilization(reg)

	if m.Timeline != nil {
		fmt.Printf("\nsuccess-rate timeline (window %g TUs):\n%s", *timeline, m.Timeline.Table())
	}

	if *paths {
		for fam, h := range m.ByFamily {
			fmt.Printf("\nselected paths (%s, %d plans):\n", fam, h.Total)
			for _, p := range h.Paths() {
				fmt.Printf("  %-24s %6.1f%%\n", p, h.Percent(p))
			}
		}
	}

	if *metrics != "" && *hold {
		holdMetrics()
	}
}

// holdMetrics keeps the process (and its /metrics endpoint) alive until
// interrupted.
func holdMetrics() {
	fmt.Fprintln(os.Stderr, "simqos: run finished; holding metrics endpoint open (interrupt to exit)")
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
}

// printStageLatencies renders the planner stage-latency histograms as a
// percentile table in microseconds of wall-clock time per session.
func printStageLatencies(reg *obs.Registry) {
	st := obs.NewPlanStages(reg)
	rows := []struct {
		name string
		h    *obs.Histogram
	}{
		{obs.StageSnapshot, st.Snapshot},
		{obs.StageBuild, st.Build},
		{obs.StagePlan, st.Plan},
		{obs.StageReserve, st.Reserve},
		{obs.StageEstablish, st.Establish},
	}
	tbl := &stats.Table{Header: []string{"stage", "count", "p50 µs", "p90 µs", "p99 µs"}}
	for _, r := range rows {
		if r.h.Count() == 0 {
			continue
		}
		tbl.AddRow(r.name,
			fmt.Sprintf("%d", r.h.Count()),
			fmt.Sprintf("%.1f", 1e6*r.h.Quantile(0.5)),
			fmt.Sprintf("%.1f", 1e6*r.h.Quantile(0.9)),
			fmt.Sprintf("%.1f", 1e6*r.h.Quantile(0.99)))
	}
	fmt.Printf("\nplanner stage latency:\n%s", tbl)
}

// printAdmission summarizes the admission-path counters: commit-time
// refusals of stale-snapshot plans, the replanning retries they caused,
// and rolled-back reservation attempts. Printed only when at least one
// counter moved (single-threaded accurate-observation runs never roll
// back, so the table would be all zeroes).
func printAdmission(reg *obs.Registry) {
	value := func(name string) float64 {
		var v float64
		for _, c := range reg.Snapshot().Counters {
			if c.Name == name {
				v += c.Value
			}
		}
		return v
	}
	rows := []struct {
		label string
		value float64
	}{
		{"stale-snapshot rejections", value(obs.MetricAdmitStaleRejects)},
		{"admission retries", value(obs.MetricAdmitRetries)},
		{"reservation rollbacks", value(obs.MetricRollbacks)},
	}
	any := false
	for _, r := range rows {
		if r.value > 0 {
			any = true
		}
	}
	if !any {
		return
	}
	tbl := &stats.Table{Header: []string{"admission event", "count"}}
	for _, r := range rows {
		tbl.AddRow(r.label, fmt.Sprintf("%.0f", r.value))
	}
	fmt.Printf("\nadmission (validate-at-commit):\n%s", tbl)
}

// printBatching summarizes the group-commit admission front end: rounds
// run, members carried, how many shared their round with at least one
// other admission, the mean round size, and the striped-lock
// acquisitions the batch sweeps amortized away. Silent when no batched
// round ever committed (every run without -batch).
func printBatching(reg *obs.Registry) {
	snap := reg.Snapshot()
	value := func(name string) float64 {
		var v float64
		for _, c := range snap.Counters {
			if c.Name == name {
				v += c.Value
			}
		}
		return v
	}
	batches := value(obs.MetricAdmitBatches)
	if batches == 0 {
		return
	}
	members := value(obs.MetricAdmitBatchMembers)
	tbl := &stats.Table{Header: []string{"group-commit admission", "count"}}
	tbl.AddRow("rounds", fmt.Sprintf("%.0f", batches))
	tbl.AddRow("members", fmt.Sprintf("%.0f", members))
	tbl.AddRow("coalesced (shared a round)", fmt.Sprintf("%.0f", value(obs.MetricAdmitCoalesced)))
	tbl.AddRow("avg round size", fmt.Sprintf("%.1f", members/batches))
	tbl.AddRow("stripe locks taken", fmt.Sprintf("%.0f", value(obs.MetricStripeLocks)))
	tbl.AddRow("stripe locks amortized", fmt.Sprintf("%.0f", value(obs.MetricStripeAmortized)))
	fmt.Printf("\ngroup-commit admission (batched 2PC):\n%s", tbl)
}

// printTemplateCache summarizes the compiled-template fast lane: how
// many QRG constructions were served from a compiled template versus
// compiled fresh, and how many templates stayed resident. Silent when
// the cache is disabled (-template-cache=false leaves every counter at
// zero).
func printTemplateCache(reg *obs.Registry) {
	snap := reg.Snapshot()
	value := func(name string) float64 {
		var v float64
		for _, c := range snap.Counters {
			if c.Name == name {
				v += c.Value
			}
		}
		for _, g := range snap.Gauges {
			if g.Name == name {
				v += g.Value
			}
		}
		return v
	}
	hits := value(obs.MetricTemplateHits)
	misses := value(obs.MetricTemplateMisses)
	if hits+misses == 0 {
		return
	}
	tbl := &stats.Table{Header: []string{"template cache", "count"}}
	tbl.AddRow("hits", fmt.Sprintf("%.0f", hits))
	tbl.AddRow("misses (compilations)", fmt.Sprintf("%.0f", misses))
	tbl.AddRow("templates resident", fmt.Sprintf("%.0f", value(obs.MetricTemplatesCached)))
	fmt.Printf("\nQRG construction (compiled-template fast lane):\n%s", tbl)
}

// printReadPath summarizes the epoch-validated read-path caches: how
// many availability snapshots were reused against an unchanged book
// (-snapshot-cache) and how many plans were served from the memo
// (-plan-memo), including invalidations. Silent when both caches are
// off (every counter at zero).
func printReadPath(reg *obs.Registry) {
	snap := reg.Snapshot()
	value := func(name string) float64 {
		var v float64
		for _, c := range snap.Counters {
			if c.Name == name {
				v += c.Value
			}
		}
		return v
	}
	snapHits := value(obs.MetricSnapshotCacheHits)
	snapMisses := value(obs.MetricSnapshotCacheMisses)
	memoHits := value(obs.MetricPlanMemoHits)
	memoMisses := value(obs.MetricPlanMemoMisses)
	if snapHits+snapMisses+memoHits+memoMisses == 0 {
		return
	}
	tbl := &stats.Table{Header: []string{"read path", "count"}}
	if snapHits+snapMisses > 0 {
		tbl.AddRow("snapshot cache hits", fmt.Sprintf("%.0f", snapHits))
		tbl.AddRow("snapshot cache misses (rebuilds)", fmt.Sprintf("%.0f", snapMisses))
	}
	if memoHits+memoMisses > 0 {
		tbl.AddRow("plan memo hits", fmt.Sprintf("%.0f", memoHits))
		tbl.AddRow("plan memo misses (planned fresh)", fmt.Sprintf("%.0f", memoMisses))
		tbl.AddRow("plan memo evictions", fmt.Sprintf("%.0f", value(obs.MetricPlanMemoEvictions)))
	}
	fmt.Printf("\nepoch-validated read path:\n%s", tbl)
}

// printFaults summarizes the fault-injection and session-repair
// counters of a chaos run: injected fault events by kind, the repair
// outcomes of the affected sessions, and the leased holds reclaimed by
// expiry sweeps. Silent when no fault was ever injected (every
// non-chaos run).
func printFaults(reg *obs.Registry) {
	snap := reg.Snapshot()
	value := func(name string) float64 {
		var v float64
		for _, c := range snap.Counters {
			if c.Name == name {
				v += c.Value
			}
		}
		return v
	}
	injected := value(obs.MetricFaultInjected)
	if injected == 0 {
		return
	}
	tbl := &stats.Table{Header: []string{"fault / repair event", "count"}}
	tbl.AddRow("faults injected", fmt.Sprintf("%.0f", injected))
	for _, c := range snap.Counters {
		if c.Name == obs.MetricFaultInjected && c.Value > 0 {
			tbl.AddRow("  "+c.Labels["kind"], fmt.Sprintf("%.0f", c.Value))
		}
	}
	tbl.AddRow("sessions repaired", fmt.Sprintf("%.0f", value(obs.MetricSessionsRepaired)))
	tbl.AddRow("sessions degraded", fmt.Sprintf("%.0f", value(obs.MetricSessionsDegraded)))
	tbl.AddRow("sessions repair-failed", fmt.Sprintf("%.0f", value(obs.MetricSessionsRepairFailed)))
	tbl.AddRow("leased holds expired", fmt.Sprintf("%.0f", value(obs.MetricLeasesExpired)))
	fmt.Printf("\nfault injection / session repair:\n%s", tbl)
}

// printTransport summarizes the message-fabric counters of an
// unreliable-messaging chaos run: protocol messages by kind, deliveries
// dropped by reason, duplicated deliveries, calls abandoned at their
// deadline or failed fast by an open breaker, admissions shed by the
// overload gate, and repair work abandoned at a sweep deadline. Silent
// when no message ever crossed an instrumented fabric (every run
// without transport chaos).
func printTransport(reg *obs.Registry) {
	snap := reg.Snapshot()
	value := func(name string) float64 {
		var v float64
		for _, c := range snap.Counters {
			if c.Name == name {
				v += c.Value
			}
		}
		return v
	}
	messages := value(obs.MetricTransportMessages)
	if messages == 0 {
		return
	}
	tbl := &stats.Table{Header: []string{"transport event", "count"}}
	tbl.AddRow("messages sent", fmt.Sprintf("%.0f", messages))
	for _, c := range snap.Counters {
		if c.Name == obs.MetricTransportMessages && c.Value > 0 {
			tbl.AddRow("  "+c.Labels["kind"], fmt.Sprintf("%.0f", c.Value))
		}
	}
	tbl.AddRow("deliveries dropped", fmt.Sprintf("%.0f", value(obs.MetricTransportDropped)))
	for _, c := range snap.Counters {
		if c.Name == obs.MetricTransportDropped && c.Value > 0 {
			tbl.AddRow("  "+c.Labels["reason"], fmt.Sprintf("%.0f", c.Value))
		}
	}
	tbl.AddRow("deliveries duplicated", fmt.Sprintf("%.0f", value(obs.MetricTransportDuplicated)))
	tbl.AddRow("calls timed out", fmt.Sprintf("%.0f", value(obs.MetricTransportCallTimeouts)))
	tbl.AddRow("breaker fast-fails", fmt.Sprintf("%.0f", value(obs.MetricTransportBreakerFastFail)))
	tbl.AddRow("admissions shed", fmt.Sprintf("%.0f", value(obs.MetricAdmissionShed)))
	tbl.AddRow("repairs abandoned at deadline", fmt.Sprintf("%.0f", value(obs.MetricRepairAbandoned)))
	fmt.Printf("\ntransport (unreliable messaging):\n%s", tbl)
	printCallLatency(snap)
}

// printCallLatency renders the fabric call-latency histograms
// (qosres_transport_call_seconds) aggregated across routes, one row per
// message kind. Silent when no call was ever timed.
func printCallLatency(snap obs.SnapshotData) {
	type agg struct {
		count  uint64
		bounds []float64
		counts []uint64 // per-bucket, finite bounds only
	}
	kinds := map[string]*agg{}
	var order []string
	for _, h := range snap.Histograms {
		if h.Name != obs.MetricTransportCallSeconds {
			continue
		}
		kind := h.Labels["kind"]
		a := kinds[kind]
		if a == nil {
			a = &agg{bounds: make([]float64, len(h.Buckets)), counts: make([]uint64, len(h.Buckets))}
			for i, b := range h.Buckets {
				a.bounds[i] = b.UpperBound
			}
			kinds[kind] = a
			order = append(order, kind)
		}
		var prev uint64
		for i, b := range h.Buckets {
			a.counts[i] += b.Count - prev
			prev = b.Count
		}
		a.count += h.Count
	}
	if len(order) == 0 {
		return
	}
	sort.Strings(order)
	// Linear interpolation inside the landing bucket, same estimate as
	// obs.Histogram.Quantile; the overflow bucket reports the largest
	// finite bound.
	quantile := func(a *agg, q float64) float64 {
		if a.count == 0 || len(a.bounds) == 0 {
			return 0
		}
		target := q * float64(a.count)
		var cum float64
		for i, c := range a.counts {
			prev := cum
			cum += float64(c)
			if cum < target || c == 0 {
				continue
			}
			lower := 0.0
			if i > 0 {
				lower = a.bounds[i-1]
			}
			return lower + (a.bounds[i]-lower)*(target-prev)/float64(c)
		}
		return a.bounds[len(a.bounds)-1]
	}
	tbl := &stats.Table{Header: []string{"fabric call", "count", "p50 µs", "p99 µs"}}
	for _, k := range order {
		a := kinds[k]
		tbl.AddRow(k, fmt.Sprintf("%d", a.count),
			fmt.Sprintf("%.1f", 1e6*quantile(a, 0.50)),
			fmt.Sprintf("%.1f", 1e6*quantile(a, 0.99)))
	}
	fmt.Printf("\nfabric call latency (per message kind):\n%s", tbl)
}

// printUtilization summarizes the end-of-run per-resource utilization
// gauges: the most loaded resources first.
func printUtilization(reg *obs.Registry) {
	snap := reg.Snapshot()
	type util struct {
		resource string
		value    float64
	}
	var us []util
	for _, g := range snap.Gauges {
		if g.Name == obs.MetricUtilization {
			us = append(us, util{g.Labels["resource"], g.Value})
		}
	}
	if len(us) == 0 {
		return
	}
	sort.Slice(us, func(i, j int) bool {
		if us[i].value != us[j].value {
			return us[i].value > us[j].value
		}
		return us[i].resource < us[j].resource
	})
	const top = 8
	fmt.Printf("\nend-of-run resource utilization (top %d of %d):\n", min(top, len(us)), len(us))
	for i, u := range us {
		if i == top {
			break
		}
		fmt.Printf("  %-28s %5.1f%%\n", u.resource, 100*u.value)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simqos:", err)
	os.Exit(1)
}

// serverOffer mirrors qosserved's GET /spec reply; the session document
// is relayed opaquely, so simqos needs no spec types of its own.
type serverOffer struct {
	MainHost string          `json:"mainHost"`
	Duration float64         `json:"duration"`
	Session  json.RawMessage `json:"session"`
}

type serverSession struct {
	ID      string `json:"id"`
	Service string `json:"service"`
	Level   string `json:"level"`
	Rank    int    `json:"rank"`
}

// runServerLoad drives a qosserved instance with open-loop Poisson
// arrivals: sample an offer, establish it, heartbeat while holding it
// for its sampled duration (capped to the run window), then tear it
// down. Open-loop means arrivals never wait for completions — exactly
// the load shape that exposes a slow or amnesiac server.
func runServerLoad(base string, rate float64, dur time.Duration, seed int64) error {
	if rate <= 0 {
		return fmt.Errorf("server load needs a positive -rate, got %g", rate)
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 15 * time.Second}
	rng := rand.New(rand.NewSource(seed))
	deadline := time.Now().Add(dur)

	var (
		mu          sync.Mutex
		arrivals    int
		established int
		refused     int
		torndown    int
		heartbeats  int
		failed      int
	)
	count := func(c *int) { mu.Lock(); *c++; mu.Unlock() }

	var wg sync.WaitGroup
	drive := func(offer serverOffer) {
		defer wg.Done()
		body, err := json.Marshal(map[string]any{
			"mainHost": offer.MainHost,
			"session":  offer.Session,
		})
		if err != nil {
			count(&failed)
			return
		}
		resp, err := client.Post(base+"/establish", "application/json", bytes.NewReader(body))
		if err != nil {
			count(&failed)
			return
		}
		reply, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			count(&failed)
			return
		}
		if resp.StatusCode != http.StatusOK {
			// Admission refusals (plan infeasible, commit refused, shed)
			// are an expected outcome of open-loop load, not an error.
			count(&refused)
			return
		}
		var sess serverSession
		if err := json.Unmarshal(reply, &sess); err != nil {
			count(&failed)
			return
		}
		count(&established)

		hold := time.Duration(offer.Duration * float64(time.Second))
		if remain := time.Until(deadline); hold > remain {
			hold = remain
		}
		holdUntil := time.Now().Add(hold)
		for time.Now().Before(holdUntil) {
			gap := 5 * time.Second
			if remain := time.Until(holdUntil); remain < gap {
				gap = remain
			}
			time.Sleep(gap)
			resp, err := client.Post(base+"/heartbeat?id="+sess.ID, "", nil)
			if err != nil {
				count(&failed)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				// Lease lapsed or the server restarted: the session is
				// gone, there is nothing left to tear down.
				count(&failed)
				return
			}
			count(&heartbeats)
		}
		resp, err = client.Post(base+"/teardown?id="+sess.ID, "", nil)
		if err != nil {
			count(&failed)
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			count(&failed)
			return
		}
		count(&torndown)
	}

	fmt.Fprintf(os.Stderr, "simqos: driving %s at %g sessions/60s for %v\n", base, rate, dur)
	for time.Now().Before(deadline) {
		gap := time.Duration(rng.ExpFloat64() * 60 / rate * float64(time.Second))
		if remain := time.Until(deadline); gap > remain {
			break
		}
		time.Sleep(gap)
		resp, err := client.Get(base + "/spec")
		if err != nil {
			count(&failed)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			count(&failed)
			continue
		}
		var offer serverOffer
		if err := json.Unmarshal(body, &offer); err != nil {
			count(&failed)
			continue
		}
		mu.Lock()
		arrivals++
		mu.Unlock()
		wg.Add(1)
		go drive(offer)
	}
	wg.Wait()

	fmt.Printf("server load: arrivals=%d established=%d refused=%d torndown=%d heartbeats=%d errors=%d\n",
		arrivals, established, refused, torndown, heartbeats, failed)
	if failed > 0 {
		return fmt.Errorf("%d request errors against %s", failed, base)
	}
	return nil
}
