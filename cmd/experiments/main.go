// Command experiments regenerates the tables and figures of the paper's
// performance study. Each experiment prints the same rows/series the
// paper reports; see EXPERIMENTS.md for paper-vs-measured commentary.
//
// Usage:
//
//	experiments [-run all|fig11|table1|table2|table3|table4|fig12|fig13]
//	            [-seed 1] [-duration 10800] [-scale 1.75]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"qosres/internal/broker"
	"qosres/internal/experiments"
	"qosres/internal/sim"
)

func main() {
	var (
		run      = flag.String("run", "all", "comma-separated experiments: fig11, table1, table2, table3, table4, fig12, fig13, quality, planbench, admitbench, readbench, servebench (planbench, admitbench, readbench and servebench are opt-in, not part of all)")
		seed     = flag.Int64("seed", 1, "base random seed")
		duration = flag.Float64("duration", 10800, "simulated time units per run")
		scale    = flag.Float64("scale", 0, "workload base scale override (0 = calibrated default)")
		plot     = flag.Bool("plot", false, "also render figures as ASCII charts")
		csvDir   = flag.String("csv", "", "also write each experiment's data as CSV files into this directory")
		benchOut = flag.String("benchjson", "", "with -run planbench, also write the comparison to this JSON file (e.g. BENCH_plan.json)")
		admitOut = flag.String("admitjson", "", "with -run admitbench, also write the sweep to this JSON file (e.g. BENCH_admit.json)")
		readOut  = flag.String("readjson", "", "with -run readbench, also write the read-path benchmark to this JSON file (e.g. BENCH_read.json)")
		serveOut = flag.String("servejson", "", "with -run servebench, also write the serving benchmark to this JSON file (e.g. BENCH_served.json)")
	)
	flag.Parse()

	opts := experiments.Opts{Seed: *seed, Duration: broker.Time(*duration), Scale: *scale}
	want := map[string]bool{}
	for _, name := range strings.Split(*run, ",") {
		want[strings.TrimSpace(name)] = true
	}
	all := want["all"]
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	writeCSV := func(name string, write func(w *os.File) error) {
		if *csvDir == "" {
			return
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fail(err)
		}
		f, err := os.Create(filepath.Join(*csvDir, name))
		if err != nil {
			fail(err)
		}
		if err := write(f); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}

	if all || want["fig11"] {
		rows, err := experiments.Fig11(opts)
		if err != nil {
			fail(err)
		}
		experiments.PrintFig11(os.Stdout, "Figure 11", rows)
		writeCSV("fig11.csv", func(w *os.File) error { return experiments.WriteFig11CSV(w, rows) })
		if *plot {
			experiments.PlotFig11(os.Stdout, "Figure 11 (a): success rate (%)", "a", rows)
			experiments.PlotFig11(os.Stdout, "Figure 11 (b): avg end-to-end QoS level", "b", rows)
		}
		fmt.Println()
	}
	if all || want["table1"] || want["table2"] {
		tabs, err := experiments.Tables12(opts)
		if err != nil {
			fail(err)
		}
		if all || want["table1"] {
			experiments.PrintPathTable(os.Stdout,
				"Table 1: selected reservation paths, figure 10(a) QRGs (rate 80/60 TUs)", tabs.Table1)
			writeCSV("table1.csv", func(w *os.File) error { return experiments.WritePathTableCSV(w, tabs.Table1) })
			fmt.Println()
		}
		if all || want["table2"] {
			experiments.PrintPathTable(os.Stdout,
				"Table 2: selected reservation paths, figure 10(b) QRGs (rate 80/60 TUs)", tabs.Table2)
			writeCSV("table2.csv", func(w *os.File) error { return experiments.WritePathTableCSV(w, tabs.Table2) })
			fmt.Println()
		}
		fmt.Printf("bottleneck coverage (distinct resources that were a plan bottleneck): basic=%d tradeoff=%d\n\n",
			tabs.BottleneckCoverage["basic"], tabs.BottleneckCoverage["tradeoff"])
	}
	if all || want["table3"] {
		rows, err := experiments.Tables34(opts, sim.AlgBasic)
		if err != nil {
			fail(err)
		}
		experiments.PrintTable34(os.Stdout, "Table 3: per-class success rate / avg QoS, basic", rows)
		writeCSV("table3.csv", func(w *os.File) error { return experiments.WriteTable34CSV(w, rows) })
		fmt.Println()
	}
	if all || want["table4"] {
		rows, err := experiments.Tables34(opts, sim.AlgTradeoff)
		if err != nil {
			fail(err)
		}
		experiments.PrintTable34(os.Stdout, "Table 4: per-class success rate / avg QoS, tradeoff", rows)
		writeCSV("table4.csv", func(w *os.File) error { return experiments.WriteTable34CSV(w, rows) })
		fmt.Println()
	}
	if all || want["fig12"] {
		for _, alg := range []sim.Algorithm{sim.AlgBasic, sim.AlgTradeoff} {
			rows, err := experiments.Fig12(opts, alg)
			if err != nil {
				fail(err)
			}
			panel := "(a) basic"
			if alg == sim.AlgTradeoff {
				panel = "(b) tradeoff"
			}
			experiments.PrintFig12(os.Stdout, "Figure 12 "+panel+": success rate under stale observations", rows)
			writeCSV(fmt.Sprintf("fig12_%s.csv", alg), func(w *os.File) error { return experiments.WriteFig12CSV(w, rows) })
			if *plot {
				experiments.PlotFig12(os.Stdout, "Figure 12 "+panel+": success rate (%) vs rate", rows)
			}
			fmt.Println()
		}
	}
	if all || want["quality"] {
		res, err := experiments.HeuristicQuality(*seed, 2000)
		if err != nil {
			fail(err)
		}
		experiments.PrintHeuristicQuality(os.Stdout, res)
		fmt.Println()
	}
	if all || want["fig13"] {
		rows, err := experiments.Fig13(opts)
		if err != nil {
			fail(err)
		}
		experiments.PrintFig11(os.Stdout, "Figure 13 (diversity limited to 3:1)", rows)
		writeCSV("fig13.csv", func(w *os.File) error { return experiments.WriteFig11CSV(w, rows) })
		if *plot {
			experiments.PlotFig11(os.Stdout, "Figure 13 (a): success rate (%), diversity 3:1", "a", rows)
		}
		fmt.Println()
	}
	// Opt-in (deterministic experiment output stays the default): the
	// plan-path microbenchmarks behind the compiled-template fast lane.
	if want["planbench"] {
		res, err := experiments.PlanBench()
		if err != nil {
			fail(err)
		}
		experiments.PrintPlanBench(os.Stdout, res)
		if *benchOut != "" {
			if err := experiments.WritePlanBenchJSON(*benchOut, res); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *benchOut)
		}
		fmt.Println()
	}
	// Also opt-in: the admission-throughput sweep (group-commit batching
	// vs serialized 2PC) behind the BENCH_admit.json artifact.
	if want["admitbench"] {
		res, err := experiments.AdmitBench(*seed)
		if err != nil {
			fail(err)
		}
		experiments.PrintAdmitBench(os.Stdout, res)
		if *admitOut != "" {
			if err := experiments.WriteAdmitBenchJSON(*admitOut, res); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *admitOut)
		}
		fmt.Println()
	}
	// Also opt-in: the lock-free read-path benchmark (epoch-validated
	// snapshot cache + plan memoization) behind BENCH_read.json.
	if want["readbench"] {
		res, err := experiments.ReadBench(*seed)
		if err != nil {
			fail(err)
		}
		experiments.PrintReadBench(os.Stdout, res)
		if *readOut != "" {
			if err := experiments.WriteReadBenchJSON(*readOut, res); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *readOut)
		}
		fmt.Println()
	}
	// Also opt-in: the serving front-end benchmark (open-loop Poisson
	// load over HTTP, establish latency percentiles) behind
	// BENCH_served.json.
	if want["servebench"] {
		res, err := experiments.ServeBench(experiments.DefaultServeBenchConfig(*seed))
		if err != nil {
			fail(err)
		}
		experiments.PrintServeBench(os.Stdout, res)
		if *serveOut != "" {
			if err := experiments.WriteServeBenchJSON(*serveOut, res); err != nil {
				fail(err)
			}
			fmt.Printf("wrote %s\n", *serveOut)
		}
		fmt.Println()
	}
}
