// Command qosplan computes an end-to-end multi-resource reservation plan
// for a service session described in JSON: the component-based
// QoS-Resource Model, the session's resource binding, and the current
// resource availability. It prints the selected end-to-end QoS level,
// the per-component (Qin, Qout) choices, and the plan's bottleneck.
//
// Usage:
//
//	qosplan -in session.json [-alg basic|tradeoff|twopass|random|exhaustive] [-seed 1]
//	qosplan -in session.json -bench 1000   # planning micro-benchmark
//	qosplan -example        # print a ready-to-edit example session file
//
// The JSON schema is documented in qosres/internal/spec; `qosplan
// -example` emits a complete working document.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"qosres"
	"qosres/internal/obs"
	"qosres/internal/spec"
)

func plannerFor(name string, seed int64) (qosres.Planner, error) {
	switch name {
	case "basic":
		return qosres.NewBasicPlanner(), nil
	case "tradeoff":
		return qosres.NewTradeoffPlanner(), nil
	case "twopass":
		return qosres.NewTwoPassPlanner(), nil
	case "random":
		return qosres.NewRandomPlanner(seed), nil
	case "exhaustive":
		return qosres.NewExhaustivePlanner(), nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}

func main() {
	var (
		in      = flag.String("in", "", "session spec JSON file (- for stdin)")
		alg     = flag.String("alg", "basic", "algorithm: basic, tradeoff, twopass, random, exhaustive")
		seed    = flag.Int64("seed", 1, "seed for the random algorithm")
		example = flag.Bool("example", false, "print an example session spec and exit")
		dot     = flag.Bool("dot", false, "print the session's QoS-Resource Graph in Graphviz DOT format and exit")
		counts  = flag.Bool("counts", false, "also print the number of feasible plans per end-to-end level")
		bench   = flag.Int("bench", 0, "run QRG build + planning this many times and print latency percentiles")
	)
	flag.Parse()

	if *example {
		fmt.Println(exampleSpec)
		return
	}
	if *in == "" {
		fmt.Fprintln(os.Stderr, "qosplan: -in required (or -example)")
		os.Exit(2)
	}
	var data []byte
	var err error
	if *in == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		fatal(err)
	}
	doc, err := spec.Parse(data)
	if err != nil {
		fatal(err)
	}
	service, binding, snap, err := doc.Build()
	if err != nil {
		fatal(err)
	}
	g, err := qosres.BuildQRG(service, binding, snap)
	if err != nil {
		fatal(err)
	}
	if *dot {
		fmt.Print(g.DOT())
		return
	}
	planner, err := plannerFor(*alg, *seed)
	if err != nil {
		fatal(err)
	}
	if *bench > 0 {
		if err := runBench(*bench, service, binding, snap, planner); err != nil {
			fatal(err)
		}
		return
	}
	plan, err := planner.Plan(g)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("service:     %s (%d components, QRG %d nodes / %d edges)\n",
		service.Name, len(service.Components), g.NodeCount(), g.EdgeCount())
	fmt.Printf("algorithm:   %s\n", planner.Name())
	fmt.Printf("end-to-end:  %s (level %d of %d)\n", plan.EndToEnd.Name, plan.Rank, len(service.EndToEndRanking))
	if plan.PathLevels != "" {
		fmt.Printf("path:        %s\n", plan.PathLevels)
	}
	fmt.Printf("bottleneck:  %s at contention index %.4f\n", plan.Bottleneck, plan.Psi)
	fmt.Println("reservation plan:")
	for _, c := range plan.Choices {
		fmt.Printf("  %-14s %s -> %s  reserves %v  (Ψe %.4f)\n", c.Comp, c.In.Name, c.Out.Name, c.Req, c.Psi)
	}
	fmt.Printf("total requirement: %v\n", plan.Requirement())
	if *counts {
		fmt.Println("feasible plans per end-to-end level:")
		for _, c := range qosres.FeasiblePlanCounts(g) {
			fmt.Printf("  %-10s (level %d): %.0f\n", c.Level, c.Rank, c.Plans)
		}
	}
}

// runBench measures the two planner-side stages — QRG construction and
// plan computation — over n repetitions of the same session, recording
// each into an obs histogram and printing the percentile summary.
func runBench(n int, service *qosres.Service, binding qosres.Binding,
	snap *qosres.Snapshot, planner qosres.Planner) error {

	reg := obs.New()
	stages := obs.NewPlanStages(reg)
	for i := 0; i < n; i++ {
		sp := obs.StartSpan(stages.Build)
		g, err := qosres.BuildQRG(service, binding, snap)
		sp.End()
		if err != nil {
			return err
		}
		sp = obs.StartSpan(stages.Plan)
		_, err = planner.Plan(g)
		sp.End()
		if err != nil {
			return err
		}
	}
	fmt.Printf("planning benchmark: %s, %d iterations\n", planner.Name(), n)
	for _, s := range []struct {
		name string
		h    *obs.Histogram
	}{
		{obs.StageBuild, stages.Build},
		{obs.StagePlan, stages.Plan},
	} {
		fmt.Printf("  %-10s p50 %8.1fµs  p90 %8.1fµs  p99 %8.1fµs\n",
			s.name, 1e6*s.h.Quantile(0.5), 1e6*s.h.Quantile(0.9), 1e6*s.h.Quantile(0.99))
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qosplan:", err)
	os.Exit(1)
}

const exampleSpec = `{
  "name": "media",
  "components": [
    {
      "id": "Encoder",
      "in":  {"src": {"rate": 30}},
      "out": {"hi": {"rate": 30}, "lo": {"rate": 15}},
      "outOrder": ["hi", "lo"],
      "table": {"src": {"hi": {"cpu": 40}, "lo": {"cpu": 15}}},
      "resources": ["cpu"]
    },
    {
      "id": "Player",
      "in":  {"in-hi": {"rate": 30}, "in-lo": {"rate": 15}},
      "out": {"best": {"rate": 30, "delay": 1}, "ok": {"rate": 15, "delay": 2}},
      "outOrder": ["best", "ok"],
      "table": {
        "in-hi": {"best": {"net": 60}},
        "in-lo": {"best": {"net": 80}, "ok": {"net": 25}}
      },
      "resources": ["net"]
    }
  ],
  "edges": [{"from": "Encoder", "to": "Player"}],
  "ranking": ["best", "ok"],
  "binding": {
    "Encoder": {"cpu": "cpu@server"},
    "Player":  {"net": "net@server"}
  },
  "availability": {"cpu@server": 200, "net@server": 100},
  "alpha": {"net@server": 0.9}
}`
